package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E9Row is one authentication scheme's measured cost.
type E9Row struct {
	Scheme        string
	SignNs        float64 // per 1400-byte packet
	VerifyNs      float64
	GarbageNs     float64 // cost of REJECTING a junk packet (the DoS case)
	OverheadBytes int
}

// E9Result is the outcome of the authentication experiment.
type E9Result struct {
	Rows []E9Row
	// InjectionDropped counts forged packets a verifying speaker
	// rejected in the end-to-end run.
	InjectionDropped int64
	// InjectionPlayedClean reports whether the genuine stream still
	// played while under injection.
	InjectionPlayedClean bool
}

// E9Auth evaluates §5.1: per-packet authentication must be cheap to
// verify — especially for garbage, or an attacker overwhelms the speaker
// by feeding it junk. We measure sign/verify/reject cost and overhead
// for each scheme, then run an end-to-end injection attack against an
// HMAC-verifying speaker.
func E9Auth(w io.Writer, iters int) E9Result {
	if iters <= 0 {
		iters = 2000
	}
	section(w, "E9 (§5.1)", "packet authentication: cost and DoS resistance")
	pkt := make([]byte, 1400)
	for i := range pkt {
		pkt[i] = byte(i)
	}

	var res E9Result
	schemes := []struct {
		name   string
		auth   security.Authenticator
		verify security.Authenticator // receiver side
	}{}
	hm := security.NewHMAC([]byte("group key"))
	schemes = append(schemes, struct {
		name   string
		auth   security.Authenticator
		verify security.Authenticator
	}{"hmac", hm, hm})
	chainSender := security.NewChain([]byte("seed"), iters*4+16)
	schemes = append(schemes, struct {
		name   string
		auth   security.Authenticator
		verify security.Authenticator
	}{"chain", chainSender, security.NewChainVerifier(chainSender.Anchor())})
	// HORS keys are few-time: past security.HORSBudget signatures the
	// budget guard refuses, so the signer rotates through pregenerated
	// keys exactly as a deployment must (keygen happens off the signing
	// path and is excluded from the measurement).
	rotor := newHORSRotor([]byte("hors"), iters)
	schemes = append(schemes, struct {
		name   string
		auth   security.Authenticator
		verify security.Authenticator
	}{"hors", rotor, nil})

	for _, s := range schemes {
		row := E9Row{Scheme: s.name}
		// Sign cost.
		start := time.Now()
		var wrapped []byte
		for i := 0; i < iters; i++ {
			wrapped = s.auth.Sign(pkt)
		}
		row.SignNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		row.OverheadBytes = len(wrapped) - len(pkt)
		if s.name == "hors" {
			// Verify against the key that actually made the last
			// signature — the rotor may have stepped past the first.
			s.verify = rotor.Verifier()
		}
		// Verify cost (chain only verifies each packet once — use fresh
		// signatures).
		if s.name == "chain" {
			sigs := make([][]byte, iters)
			sender := security.NewChain([]byte("seed2"), iters+16)
			verifier := security.NewChainVerifier(sender.Anchor())
			for i := range sigs {
				sigs[i] = sender.Sign(pkt)
			}
			start = time.Now()
			for i := range sigs {
				verifier.Verify(sigs[i])
			}
			row.VerifyNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		} else {
			start = time.Now()
			for i := 0; i < iters; i++ {
				s.verify.Verify(wrapped)
			}
			row.VerifyNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		}
		// Garbage rejection cost: junk with a plausible trailer shape.
		garbage := make([]byte, len(wrapped))
		copy(garbage, wrapped)
		garbage[0] ^= 0xFF
		start = time.Now()
		for i := 0; i < iters; i++ {
			s.verify.Verify(garbage)
		}
		row.GarbageNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		res.Rows = append(res.Rows, row)
	}

	tab := stats.Table{Headers: []string{"scheme", "sign ns/pkt", "verify ns/pkt", "reject-junk ns/pkt", "overhead B"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Scheme, fmt.Sprintf("%.0f", r.SignNs), fmt.Sprintf("%.0f", r.VerifyNs),
			fmt.Sprintf("%.0f", r.GarbageNs), r.OverheadBytes)
	}
	tab.Render(w)

	// End-to-end injection attack against an HMAC-verifying speaker.
	dropped, clean := e9Injection()
	res.InjectionDropped = dropped
	res.InjectionPlayedClean = clean
	fmt.Fprintf(w, "  injection attack: %d forged packets rejected; genuine stream intact: %v\n",
		res.InjectionDropped, res.InjectionPlayedClean)
	fmt.Fprintf(w, "  paper: signing every packet with a conventional signature would let an\n")
	fmt.Fprintf(w, "  attacker overwhelm the ES; hash-based schemes keep rejection cheap\n")
	return res
}

// horsRotor signs with pregenerated few-time HORS keys, stepping to the
// next key when the current one's signature budget is spent — the
// rotation discipline the budget guard enforces on real senders.
type horsRotor struct {
	keys []*security.HORSKey
	i    int
}

func newHORSRotor(seed []byte, signs int) *horsRotor {
	n := signs/security.HORSBudget + 1
	r := &horsRotor{keys: make([]*security.HORSKey, n)}
	for i := range r.keys {
		r.keys[i] = security.GenerateHORS(append([]byte{byte(i), byte(i >> 8)}, seed...))
	}
	return r
}

func (r *horsRotor) Scheme() proto.AuthScheme { return proto.AuthHORS }

func (r *horsRotor) Sign(pkt []byte) []byte {
	if r.keys[r.i].Exhausted() && r.i+1 < len(r.keys) {
		r.i++
	}
	return (&security.HORSAuth{Key: r.keys[r.i]}).Sign(pkt)
}

func (r *horsRotor) Verify(pkt []byte) ([]byte, bool) {
	return r.Verifier().Verify(pkt)
}

// Verifier returns a receiver holding the current key's public half.
func (r *horsRotor) Verifier() security.Authenticator {
	return &security.HORSAuth{Pub: r.keys[r.i].Public()}
}

// e9Injection runs the end-to-end attack: an attacker floods the group
// with forged packets while an authenticated channel plays.
func e9Injection() (dropped int64, playedClean bool) {
	auth := security.NewHMAC([]byte("campus PA key"))
	ps, err := newPlayback(
		lan.SegmentConfig{},
		rebroadcast.Config{
			ID: 1, Name: "e9", Group: groupA, Codec: "raw",
			Sign: auth.Sign,
		},
		vad.Config{},
		[]speaker.Config{{Name: "es1", Group: groupA, Verify: auth.Verify}},
	)
	if err != nil {
		return 0, false
	}
	sys := ps.Sys
	p := audio.Voice
	const clip = 5 * time.Second
	sys.Clock.Go("player", func() {
		ps.Ch.Play(p, audio.NewTone(p.SampleRate, 1, 440, 0.5), clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
	})
	sys.Clock.Go("attacker", func() {
		conn, err := sys.Net.Attach("10.0.66.6:5000")
		if err != nil {
			return
		}
		defer conn.Close()
		junk := make([]byte, 900)
		for i := 0; i < 200; i++ {
			conn.Send(groupA, junk)
			sys.Clock.Sleep(20 * time.Millisecond)
		}
	})
	sys.Sim.WaitIdle()
	st := ps.Speakers[0].Stats()
	played := float64(st.BytesPlayed) / float64(p.BytesFor(clip))
	return st.DroppedAuth, played > 0.9 && st.DataPackets > 0
}
