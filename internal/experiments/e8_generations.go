package experiments

import (
	"fmt"
	"io"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/stats"
)

// E8Row is one (quality, generation) outcome.
type E8Row struct {
	Quality    int
	Generation int
	SNR        float64
	Kbps       float64
}

// E8Result is the outcome of the multi-generation experiment.
type E8Result struct{ Rows []E8Row }

// E8Generations reproduces the §2.2 discussion of stacked lossy codecs:
// a user's MP3 has already been through one lossy codec before OVL
// touches it, so the paper runs the encoder at maximum quality to keep
// multi-generation damage down. We re-encode the same program material
// through 1..5 generations at q=10 and q=3 and track SNR against the
// original.
func E8Generations(w io.Writer, generations int) E8Result {
	if generations <= 0 {
		generations = 5
	}
	section(w, "E8 (§2.2)", "multi-generation lossy coding")
	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	src := audio.Music(p.SampleRate, 1)
	orig := make([]int16, p.SampleRate) // one second
	src.ReadSamples(orig)
	n := 256 // ovl frame for 44.1 kHz

	var res E8Result
	for _, q := range []int{codec.MaxQuality, 3} {
		cur := orig
		for g := 1; g <= generations; g++ {
			enc, err := codec.NewEncoder("ovl", p, q)
			if err != nil {
				return res
			}
			dec, _ := codec.NewDecoder("ovl", p)
			pkt, err := enc.Encode(audio.Encode(p, cur))
			if err != nil {
				return res
			}
			tail, _ := enc.Flush()
			pkt = append(pkt, tail...)
			out, err := dec.Decode(pkt)
			if err != nil {
				return res
			}
			s := audio.Decode(p, out)
			// Strip the codec's one-frame latency to keep alignment.
			if len(s) > n {
				s = s[n:]
			}
			if len(s) > len(cur) {
				s = s[:len(cur)]
			}
			cur = s
			ref := orig[:len(cur)]
			snr := audio.SNR(ref[n:], cur[n:])
			res.Rows = append(res.Rows, E8Row{
				Quality:    q,
				Generation: g,
				SNR:        snr,
				Kbps:       float64(len(pkt)) * 8 / 1000,
			})
		}
	}
	tab := stats.Table{Headers: []string{"quality", "generation", "SNR dB", "kbps"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Quality, r.Generation, fmt.Sprintf("%.1f", r.SNR), fmt.Sprintf("%.0f", r.Kbps))
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: quality index at maximum \"throws away as little data as\n")
	fmt.Fprintf(w, "  possible\"; no audible defects observed after MP3→Vorbis stacking\n")
	return res
}
