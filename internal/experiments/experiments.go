package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/vad"
)

// Group addresses used across experiments.
const (
	groupA = lan.Addr("239.72.1.1:5004")
	groupB = lan.Addr("239.72.1.2:5004")
)

// section prints an experiment banner.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", id, title)
}

// playbackSystem builds a one-channel system with n speakers and starts
// a player task; helper shared by several experiments.
type playbackSystem struct {
	Sys      *core.System
	Ch       *core.Channel
	Speakers []*speaker.Speaker
	Meter    *core.SkewMeter
}

// newPlayback builds the system; the caller still starts players.
func newPlayback(segCfg lan.SegmentConfig, chCfg rebroadcast.Config, vCfg vad.Config,
	spCfgs []speaker.Config) (*playbackSystem, error) {
	sys := core.NewSim(segCfg)
	ch, err := sys.AddChannel(chCfg, vCfg)
	if err != nil {
		return nil, err
	}
	ps := &playbackSystem{Sys: sys, Ch: ch, Meter: core.NewSkewMeter()}
	for _, cfg := range spCfgs {
		sp, err := sys.AddSpeaker(cfg)
		if err != nil {
			return nil, err
		}
		ps.Speakers = append(ps.Speakers, sp)
		ps.Meter.Attach(cfg.Name, sp)
	}
	return ps, nil
}

// glitches returns mid-stream silence insertions at a speaker's DAC —
// the audible-defect count used by E4/E6/E10.
func glitches(sp *speaker.Speaker) int64 {
	st := sp.Device().GetStats()
	return st.SilenceBlocks + st.Underruns
}

// mono16 is the 16-bit mono configuration used when the position-coded
// signal must survive the transport bit-exactly.
var mono16 = audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}

// fmtDur rounds a duration for table output.
func fmtDur(d time.Duration) string { return d.Round(100 * time.Microsecond).String() }

// coreNewSim builds a fresh simulated system (alias kept short for the
// experiment code).
func coreNewSim(cfg lan.SegmentConfig) *core.System { return core.NewSim(cfg) }
