// Package experiments regenerates every figure, table and quantified
// claim in the paper's evaluation. Each experiment is a function that
// runs the workload (on simulated time where the paper measured a live
// system, on the real clock where it measured raw CPU cost), writes a
// human-readable table to an io.Writer, and returns a result struct that
// the test suite asserts shape properties on and the benchmark harness
// reports metrics from.
//
// The experiment index lives in DESIGN.md; paper-vs-measured numbers in
// EXPERIMENTS.md.
package experiments
