package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E7Row is one control-interval configuration's outcome.
type E7Row struct {
	Interval  time.Duration
	MeanJoin  time.Duration // mean join -> first sound
	MaxJoin   time.Duration
	JoinCount int
}

// E7Result is the outcome of the join-latency experiment.
type E7Result struct{ Rows []E7Row }

// E7JoinLatency quantifies the cost of the §2.3 radio model: a speaker
// must wait for the next periodic control packet before it can play, so
// its cold-start latency is ~interval/2 on average plus the buffering
// lead. The control cadence is the knob: frequent control packets cost
// bandwidth, infrequent ones cost join latency.
func E7JoinLatency(w io.Writer, intervals []time.Duration) E7Result {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
			time.Second, 2 * time.Second, 5 * time.Second,
		}
	}
	section(w, "E7 (§2.3)", "control-packet cadence vs. tune-in latency")
	var res E7Result
	for _, iv := range intervals {
		res.Rows = append(res.Rows, e7Run(iv))
	}
	tab := stats.Table{Headers: []string{"control interval", "mean join latency", "max", "joins"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Interval.String(), fmtDur(r.MeanJoin), fmtDur(r.MaxJoin), r.JoinCount)
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: \"the ES has to wait till it receives a control packet before\n")
	fmt.Fprintf(w, "  it can start playing the audio stream\" — latency ~ interval/2 + lead\n")
	return res
}

func e7Run(interval time.Duration) E7Row {
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "e7", Group: groupA, Codec: "raw",
		ControlInterval: interval,
	}, vad.Config{})
	if err != nil {
		return E7Row{Interval: interval}
	}
	meter := core.NewSkewMeter()
	const joins = 8
	clip := 4*time.Second + time.Duration(joins)*interval
	joinAt := make([]time.Time, joins)
	sys.Clock.Go("player", func() {
		ch.Play(mono16, &core.PositionSource{Channels: 1}, clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
	})
	start := sys.Clock.Now()
	for i := 0; i < joins; i++ {
		i := i
		// Stagger joins across the control period at odd offsets so the
		// sample covers the whole phase range.
		offset := time.Second + time.Duration(i)*(interval+interval/7)
		sys.Clock.Go("joiner", func() {
			sys.Clock.Sleep(offset)
			joinAt[i] = sys.Clock.Now()
			sp, err := sys.AddSpeaker(speaker.Config{
				Name: fmt.Sprintf("es%d", i), Group: groupA,
			})
			if err != nil {
				return
			}
			meter.Attach(fmt.Sprintf("es%d", i), sp)
		})
	}
	sys.Sim.WaitIdle()
	_ = start

	row := E7Row{Interval: interval}
	var total time.Duration
	for i := 0; i < joins; i++ {
		first, ok := meter.FirstSound(fmt.Sprintf("es%d", i))
		if !ok {
			continue
		}
		lat := first.Sub(joinAt[i])
		total += lat
		if lat > row.MaxJoin {
			row.MaxJoin = lat
		}
		row.JoinCount++
	}
	if row.JoinCount > 0 {
		row.MeanJoin = total / time.Duration(row.JoinCount)
	}
	return row
}
