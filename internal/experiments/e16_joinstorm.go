package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay"
	"repro/internal/relay/lease"
	"repro/internal/security"
	"repro/internal/stats"
)

// E16Result is the outcome of the join-storm experiment.
type E16Result struct {
	Subscribers   int           // storm size
	Leased        int           // subscribers holding a granted lease at the end
	Redirected    int64         // SubRedirects followed across the storm
	ShedFinal     int           // shedding relay's final subscriber count
	Threshold     int           // its configured ShedSubscribers cap
	RedirectLoops int64         // ErrRedirectLimit hits (a loop or over-long chain)
	Converge      time.Duration // storm start → every subscriber leased (sim time)
	Window        time.Duration // the lease window the whole storm had to fit in
	ForgedIgnored bool          // unsigned and wrong-key redirects dropped, target kept
}

// E16JoinStorm drives a flash crowd at a load-shedding relay tree: three
// sibling relays advertise load vectors on the catalog, one of them is
// capped well below the crowd, and n subscribers fire their Subscribes
// at the capped relay in the same instant. The shedding relay must
// answer the overflow with signed SubRedirects naming its siblings, the
// subscribers must chase them, and the storm must converge — every
// subscriber leased somewhere, the capped relay at or under its
// threshold, nobody bounced around a redirect loop — all inside one
// lease window. A forged redirect (unsigned, then wrong-key) must be
// dropped by ack verification without moving the subscriber.
func E16JoinStorm(w io.Writer, n int) E16Result {
	if n <= 0 {
		n = 2000
	}
	section(w, "E16", "join storm: load-shed redirects under a flash crowd of subscribes")
	res := e16Run(n)
	tab := stats.Table{Headers: []string{"subscribers", "leased", "redirected",
		"shed relay subs", "threshold", "redirect loops", "converged in", "forged ignored"}}
	tab.AddRow(res.Subscribers, res.Leased, res.Redirected,
		res.ShedFinal, res.Threshold, res.RedirectLoops,
		res.Converge.Round(time.Millisecond), res.ForgedIgnored)
	tab.Render(w)
	fmt.Fprintf(w, "  every subscriber must end leased within the %v window, the capped relay\n", res.Window)
	fmt.Fprintf(w, "  at or under its threshold, with zero redirect-budget exhaustions\n")
	return res
}

func e16Run(n int) E16Result {
	const window = 30 * time.Second
	res := E16Result{Subscribers: n, Threshold: n / 4, Window: window}
	auth := security.NewHMAC([]byte("relay control-plane key"))
	// The segment needs NIC buffers sized for the storm: n Subscribes
	// land on one relay socket in the same instant, and the redirected
	// overflow then lands on the siblings nearly as fast.
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond, QueueLen: 4 * n})
	if err := sys.StartCatalog(250 * time.Millisecond); err != nil {
		return res
	}
	shed, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1, Auth: auth,
		MaxSubscribers: 2 * n, ShedSubscribers: res.Threshold})
	if err != nil {
		return res
	}
	for i := 0; i < 2; i++ {
		if _, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1, Auth: auth,
			MaxSubscribers: 2 * n}); err != nil {
			return res
		}
	}
	// The shedding relay watches the same catalog its siblings advertise
	// on — exactly the relayd -advertise + -shed-subscribers wiring.
	watch, err := relay.NewWatcher(sys.Clock, sys.Net, "10.9.0.1:5003", core.CatalogGroup)
	if err != nil {
		return res
	}
	shed.SetSiblings(watch.Snapshot)
	sys.Clock.Go("sibling-watch", watch.Run)

	// The crowd: each subscriber owns a connection, a lease.Subscriber
	// signing with the shared control-plane key, and a receive loop
	// feeding acks back in — the same split esd uses.
	subs := make([]*lease.Subscriber, n)
	conns := make([]lan.Conn, n)
	var stop int32
	for i := 0; i < n; i++ {
		conn, err := sys.Net.Attach(lan.Addr(fmt.Sprintf("10.9.%d.%d:7000", 1+i/200, 1+i%200)))
		if err != nil {
			return res
		}
		conns[i] = conn
		sub := lease.New(sys.Clock, conn, fmt.Sprintf("storm-%d", i))
		sub.SetAuth(auth)
		subs[i] = sub
		sys.Clock.Go(fmt.Sprintf("storm-%d-recv", i), func() {
			for {
				pkt, err := conn.Recv(2 * time.Second)
				if err == lan.ErrTimeout {
					if atomic.LoadInt32(&stop) != 0 {
						return
					}
					continue
				}
				if err != nil {
					return
				}
				if _, err := sub.HandleAckData(pkt.From, pkt.Data); err == lease.ErrRedirectLimit {
					atomic.AddInt64(&res.RedirectLoops, 1)
				}
			}
		})
	}

	sys.Clock.Go("storm", func() {
		// Let a few announce cycles pass so the watcher holds both
		// siblings' load vectors before the crowd arrives.
		sys.Clock.Sleep(time.Second)
		start := sys.Clock.Now()
		for _, sub := range subs {
			// No Sleep between these: on the simulated clock the whole
			// storm is sent in the same instant.
			sub.Subscribe(shed.Addr(), 1, window)
		}
		for sys.Clock.Now().Sub(start) < window {
			sys.Clock.Sleep(100 * time.Millisecond)
			leased := 0
			for _, sub := range subs {
				if sub.Granted() > 0 {
					leased++
				}
			}
			if leased == n {
				res.Converge = sys.Clock.Now().Sub(start)
				break
			}
		}
		for _, sub := range subs {
			res.Leased += boolToInt(sub.Granted() > 0)
			res.Redirected += sub.Stats().Redirects
		}
		res.ShedFinal = shed.NumSubscribers()

		// Forged steering: a redirect is just a SubAck, so it must clear
		// the same §5.1 verification — unsigned and wrong-key redirects
		// die at the authenticator and the subscriber stays put.
		victim := subs[0]
		before := victim.Target()
		forged, _ := (&proto.SubAck{Channel: 1, Seq: 1 << 30,
			Status: proto.SubRedirect, Redirect: "10.9.66.1:5006"}).Marshal()
		_, errRaw := victim.HandleAckData(before, forged)
		wrongKey := security.NewHMAC([]byte("not the control-plane key"))
		_, errForged := victim.HandleAckData(before, wrongKey.Sign(forged))
		res.ForgedIgnored = errRaw == lease.ErrAuthFailed &&
			errForged == lease.ErrAuthFailed && victim.Target() == before

		atomic.StoreInt32(&stop, 1)
		for i, sub := range subs {
			sub.Close()
			conns[i].Close()
		}
		watch.Stop()
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	return res
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
