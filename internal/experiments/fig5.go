package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/stats"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// Fig5Config identifies one of the three measured configurations.
type Fig5Config string

// The three configurations of Figure 5.
const (
	Fig5Unloaded       Fig5Config = "unloaded"
	Fig5KernelThreaded Fig5Config = "kernel-threaded VAD"
	Fig5UserLevel      Fig5Config = "user-level VAD"
)

// Fig5Result is the outcome of the Figure 5 reproduction.
type Fig5Result struct {
	Series map[Fig5Config]*stats.Series
	Mean   map[Fig5Config]float64
}

// Fig5 reproduces Figure 5: the context-switch rate of an unloaded
// machine, of streaming contained inside the kernel (the VAD's kernel
// thread sends to the network directly), and of the shipped design where
// a user-level application reads the master device. The paper's vmstat
// samples become exact scheduler wakeup counts from the simulated clock,
// sampled every simulated second.
func Fig5(w io.Writer, seconds int) Fig5Result {
	if seconds <= 0 {
		seconds = 60
	}
	section(w, "Figure 5", "context-switch rate: in-kernel vs. user-level streaming")

	res := Fig5Result{Series: map[Fig5Config]*stats.Series{}, Mean: map[Fig5Config]float64{}}
	for _, cfg := range []Fig5Config{Fig5Unloaded, Fig5KernelThreaded, Fig5UserLevel} {
		res.Series[cfg] = fig5Run(cfg, seconds)
		res.Mean[cfg] = res.Series[cfg].Mean()
	}

	stats.RenderSeries(w, "  context switches per 1s interval:",
		res.Series[Fig5Unloaded], res.Series[Fig5KernelThreaded], res.Series[Fig5UserLevel])
	fmt.Fprintf(w, "  means: unloaded %.1f, kernel-threaded %.1f, user-level %.1f\n",
		res.Mean[Fig5Unloaded], res.Mean[Fig5KernelThreaded], res.Mean[Fig5UserLevel])
	fmt.Fprintf(w, "  paper's means:   unloaded 4.2, kernel-threaded 28.7, user-level 37.2\n")
	return res
}

// fig5Run measures one configuration.
func fig5Run(cfg Fig5Config, seconds int) *stats.Series {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	series := &stats.Series{Name: string(cfg)}
	stop := make(chan struct{})

	// Background housekeeping: cron/interrupt-style periodic work that
	// gives the unloaded machine its baseline rate (paper: mean 4.2).
	sim.Go("background", func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			sim.Sleep(250 * time.Millisecond)
		}
	})

	if cfg != Fig5Unloaded {
		sink, err := seg.Attach("10.0.0.9:5000")
		if err != nil {
			return series
		}
		drain, err := seg.Attach("10.0.0.10:5004")
		if err != nil {
			return series
		}
		drain.Join(groupA)
		sim.Go("drain", func() {
			for {
				if _, err := drain.Recv(time.Second); err == lan.ErrClosed {
					return
				}
				select {
				case <-stop:
					drain.Close()
					return
				default:
				}
			}
		})

		var v *vad.VAD
		if cfg == Fig5KernelThreaded {
			v = vad.New(sim, vad.Config{
				Mode: vad.ModeInKernelStreaming,
				KernelSend: func(b vad.Block) {
					sink.Send(groupA, b.Data)
				},
			})
		} else {
			v = vad.New(sim, vad.Config{Mode: vad.ModeUserStreaming})
			// The user-level streaming application: read the master
			// device, send to the LAN (an extra process on the path).
			sim.Go("userapp", func() {
				for {
					b, ok := v.Master().ReadBlock()
					if !ok {
						return
					}
					if !b.Config && len(b.Data) > 0 {
						sink.Send(groupA, b.Data)
					}
				}
			})
		}

		// The audio application: one CD-quality stream, written a block
		// at a time at the block cadence like a real player.
		sim.Go("player", func() {
			slave := v.Slave()
			if err := slave.Open(audio.CDQuality); err != nil {
				return
			}
			blk := slave.BlockSize()
			blockDur := audio.CDQuality.Duration(blk)
			data := make([]byte, blk)
			for {
				select {
				case <-stop:
					v.Close()
					return
				default:
				}
				slave.Write(data)
				sim.Sleep(blockDur)
			}
		})
	}

	// The vmstat task: sample the switch counter every simulated second.
	sim.Go("vmstat", func() {
		prev := sim.Switches()
		for i := 0; i < seconds; i++ {
			sim.Sleep(time.Second)
			cur := sim.Switches()
			series.Add(time.Duration(i+1)*time.Second, float64(cur-prev))
			prev = cur
		}
		close(stop)
	})
	sim.WaitIdle()
	_ = core.CatalogGroup // keep core linked for doc reference parity
	return series
}
