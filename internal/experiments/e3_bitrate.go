package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E3Row is one transport configuration's measured network cost.
type E3Row struct {
	Label       string
	WireMbps    float64 // payload + protocol + frame overhead on the wire
	PayloadKbps float64 // codec payload only
	Ratio       float64 // payload bytes / raw source bytes
}

// E3Result is the outcome of the network-overhead experiment.
type E3Result struct {
	Rows []E3Row
	// MaxRawStreams is the measured number of concurrent raw CD-quality
	// streams a 10 Mbps segment carries before saturating.
	MaxRawStreams int
}

// E3Bitrate reproduces the §2.2 numbers: raw CD-quality multicast costs
// ~1.3-1.4 Mbps — unacceptable on legacy 10 Mbps Ethernet — and the
// transform codec cuts it by the quality-dependent ratio. It also
// measures how many raw CD streams fit a 10 Mbps segment.
func E3Bitrate(w io.Writer, seconds int) E3Result {
	if seconds <= 0 {
		seconds = 5
	}
	section(w, "E3 (§2.2)", "network overhead per transport, 10 Mbps Ethernet")

	configs := []struct {
		label   string
		codec   string
		quality int
	}{
		{"raw PCM", "raw", 0},
		{"ulaw 2:1", "ulaw", 0},
		{"ovl q=10 (paper's setting)", "ovl", 10},
		{"ovl q=5", "ovl", 5},
		{"ovl q=3", "ovl", 3},
		{"ovl q=0", "ovl", 0},
	}
	var res E3Result
	tab := stats.Table{Headers: []string{"transport", "wire Mbps", "payload kbps", "compression"}}
	for _, cfg := range configs {
		row := e3Run(cfg.label, cfg.codec, cfg.quality, seconds)
		res.Rows = append(res.Rows, row)
		tab.AddRow(row.Label, fmt.Sprintf("%.2f", row.WireMbps),
			fmt.Sprintf("%.0f", row.PayloadKbps), fmt.Sprintf("%.0f%%", row.Ratio*100))
	}
	tab.Render(w)

	// Saturation: keep adding raw CD streams until the medium drops.
	for n := 1; n <= 12; n++ {
		if !e3FitsRawStreams(n) {
			res.MaxRawStreams = n - 1
			break
		}
		res.MaxRawStreams = n
	}
	fmt.Fprintf(w, "  raw CD streams a 10 Mbps segment carries without loss: %d\n", res.MaxRawStreams)
	fmt.Fprintf(w, "  paper: ~1.3 Mbps per raw CD stream was unacceptable on 10 Mbps links\n")
	return res
}

// e3Run measures one transport over a 10 Mbps segment.
func e3Run(label, codecName string, quality, seconds int) E3Row {
	if quality == 0 {
		quality = rebroadcast.QualityZero
	}
	ps, err := newPlayback(
		lan.SegmentConfig{BandwidthBps: 10_000_000},
		rebroadcast.Config{ID: 1, Name: "e3", Group: groupA, Codec: codecName, Quality: quality},
		vad.Config{},
		[]speaker.Config{{Name: "es1", Group: groupA}},
	)
	if err != nil {
		return E3Row{Label: label}
	}
	p := audio.CDQuality
	dur := time.Duration(seconds) * time.Second
	ps.Sys.Clock.Go("player", func() {
		ps.Ch.Play(p, audio.Music(p.SampleRate, p.Channels), dur)
		ps.Sys.Clock.Sleep(dur + time.Second)
		ps.Sys.Shutdown()
	})
	ps.Sys.Sim.WaitIdle()

	st := ps.Sys.Seg.Stats()
	rst := ps.Ch.Reb.Stats()
	span := dur.Seconds()
	row := E3Row{
		Label:    label,
		WireMbps: float64(st.WireBytesTx) * 8 / span / 1e6,
	}
	if rst.SourceBytes > 0 {
		row.Ratio = float64(rst.PayloadBytes) / float64(rst.SourceBytes)
	}
	row.PayloadKbps = float64(rst.PayloadBytes) * 8 / span / 1e3
	return row
}

// e3FitsRawStreams reports whether n concurrent raw CD streams run on a
// 10 Mbps segment without medium-saturation drops.
func e3FitsRawStreams(n int) bool {
	sys := coreNewSim(lan.SegmentConfig{BandwidthBps: 10_000_000})
	for i := 0; i < n; i++ {
		g := lan.Addr(fmt.Sprintf("239.72.2.%d:5004", i+1))
		ch, err := sys.AddChannel(rebroadcast.Config{
			ID: uint32(i + 1), Name: fmt.Sprintf("s%d", i), Group: g, Codec: "raw",
		}, vad.Config{})
		if err != nil {
			return false
		}
		if _, err := sys.AddSpeaker(speaker.Config{Name: fmt.Sprintf("es%d", i), Group: g}); err != nil {
			return false
		}
		sys.Clock.Go("player", func() {
			p := audio.CDQuality
			ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 3*time.Second)
		})
	}
	sys.Clock.Go("stopper", func() {
		sys.Clock.Sleep(5 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	st := sys.Seg.Stats()
	return st.DroppedBusy == 0
}
