package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E19Result is the outcome of the per-subscriber-identity adversary
// suite.
type E19Result struct {
	SpeakerData    int64  // data packets at the victim speaker (the attacks must not interrupt it)
	SpeakerAcks    int64  // verified grants the victim accepted
	ChainAcks      int64  // verified grants the chained relay drew from its upstream
	ForgedDrops    int64  // cross-subscriber forgeries dropped (es.relay.identity.mismatch)
	ReplayDrops    int64  // same-source control replays dropped (es.relay.replay.dropped)
	SpoofedDropped bool   // captured subscribe replayed from a spoofed source ticked auth.dropped
	SpoofedData    int64  // packets fanned out to the spoofed bystander (must be 0)
	RogueSteered   bool   // an unsigned/forged announce steered discovery (must be false)
	DiscoveredAddr string // what verified discovery picked (the signed relay)
	LegacyData     int64  // unsigned interop: data at a legacy speaker with signing off
}

// E19Adversary is the hostile-LAN closing argument for the
// per-subscriber control plane: against a chain running -auth ident,
// an attacker holding a *valid* credential of its own still cannot
// cancel or pause another subscriber's session (the lease is pinned to
// the identity that opened it), a captured signed Subscribe replayed
// from a spoofed source draws nothing (the signature binds the UDP
// source), the same capture replayed from its true source is stopped
// by the per-session replay window, and a forged or unsigned catalog
// announce never steers discovery (announces are signed). Meanwhile
// the legitimate chain keeps playing, and with signing off entirely,
// legacy unsigned peers interoperate unchanged.
func E19Adversary(w io.Writer, secs int) E19Result {
	if secs <= 0 {
		secs = 4
	}
	section(w, "E19 (§5.1)", "per-subscriber identities: forgery, replay, and steering all refused")
	res := e19Run(time.Duration(secs) * time.Second)
	tab := stats.Table{Headers: []string{"data@victim", "victim acks", "chain acks",
		"forged drops", "replay drops", "spoofed data", "rogue steered", "legacy data"}}
	tab.AddRow(res.SpeakerData, res.SpeakerAcks, res.ChainAcks,
		res.ForgedDrops, res.ReplayDrops, res.SpoofedData, res.RogueSteered, res.LegacyData)
	tab.Render(w)
	fmt.Fprintf(w, "  forged drops and replay drops must be nonzero (every cross-subscriber and\n")
	fmt.Fprintf(w, "  replayed control action refused), spoofed data 0, rogue steered false, and\n")
	fmt.Fprintf(w, "  both the signed chain and the legacy unsigned pair still play\n")
	return res
}

func e19Run(clip time.Duration) E19Result {
	var res E19Result
	ring := security.NewKeyring([]byte("chain master key"))
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "secured", Group: groupA, Codec: "raw"}, vad.Config{})
	if err != nil {
		return res
	}
	r1, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1, Auth: ring.Relay()})
	if err != nil {
		return res
	}
	// The chained relay is itself a subscriber upstream: it verifies its
	// own subscribers against the keyring but signs its upstream lease
	// with its own derived credential (identity 100), source-bound to
	// its listen address — the one-key-per-chain property the ISSUE's
	// relayd -identity flag provides for real deployments. Built by hand
	// (not AddRelay) because the source bound into UpstreamAuth must be
	// known before the relay exists.
	const r2Addr = lan.Addr("10.0.77.2:5006")
	r2conn, err := sys.Net.Attach(r2Addr)
	if err != nil {
		return res
	}
	r2, err := relay.New(sys.Clock, r2conn, relay.Config{
		Upstream:     r1.Addr(),
		Channel:      1,
		Auth:         ring.Relay(),
		UpstreamAuth: ring.SignerAt(100, string(r2Addr), 1),
		Network:      sys.Net,
		DVR:          true, // pause/resume is part of the attacked surface
	})
	if err != nil {
		return res
	}
	sys.Clock.Go("relay-r2", r2.Run)

	// The victim: identity 1, holding only its own derived credential.
	const victimAddr = lan.Addr("10.0.77.3:5004")
	sp, err := sys.AddSpeaker(speaker.Config{
		Name: "victim", Local: victimAddr, Group: r2.Addr(), Channel: 1,
		RelayAuth: security.NewIdentitySignerAt(ring.Credential(1), 1, string(victimAddr), 1),
	})
	if err != nil {
		return res
	}

	// A second legitimate subscriber (identity 3) driven by hand on r1,
	// so its signed Subscribe bytes can be captured and replayed.
	const sub3Addr = lan.Addr("10.0.77.4:5004")
	sub3, err := sys.Net.Attach(sub3Addr)
	if err != nil {
		return res
	}
	signer3 := security.NewIdentitySignerAt(ring.Credential(3), 3, string(sub3Addr), 1)
	subPkt, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
	capturedSub := signer3.Sign(subPkt)

	// The spoofed bystander: never sends, must never receive.
	bystander, err := sys.Net.Attach("10.0.66.99:5004")
	if err != nil {
		return res
	}
	sys.Clock.Go("bystander-count", func() {
		for {
			if _, err := bystander.Recv(0); err != nil {
				return
			}
			res.SpoofedData++
		}
	})

	// Steering: a rogue host floods the catalog group with unsigned and
	// wrong-key-signed announces naming its own relay, racing one signed
	// catalog announcing r1. Verified discovery must pick r1.
	catG := lan.Addr("239.72.0.7:5003")
	legitConn, err := sys.Net.Attach("10.0.77.10:5003")
	if err != nil {
		return res
	}
	legit := rebroadcast.NewCatalog(sys.Clock, legitConn, catG, 200*time.Millisecond)
	legit.SetSigner(ring.AnnounceSigner().Sign)
	legit.SetRelay(proto.RelayInfo{Addr: string(r1.Addr()), Group: string(groupA), Channel: 1})
	sys.Clock.Go("legit-catalog", legit.Run)
	rogueConn, err := sys.Net.Attach("10.0.66.50:5003")
	if err != nil {
		return res
	}
	sys.Clock.Go("rogue-catalog", func() {
		a := proto.Announce{Seq: 1, Relays: []proto.RelayInfo{
			{Addr: "10.0.66.50:5006", Group: string(groupA), Channel: 1}}}
		wrongKey := security.NewAnnounceSigner([]byte("not the master key"))
		for i := 0; i < 40; i++ {
			a.Seq++
			if pkt, err := a.Marshal(); err == nil {
				rogueConn.Send(catG, pkt) // unsigned
				if forged, err := wrongKey.Sign(pkt); err == nil {
					rogueConn.Send(catG, forged) // signed under the wrong master
				}
			}
			sys.Clock.Sleep(100 * time.Millisecond)
		}
	})
	sys.Clock.Go("discover", func() {
		ri, err := relay.Discover(sys.Clock, sys.Net, "10.0.77.11:5003", catG,
			1, 10*time.Second, nil, ring.AnnounceVerifier())
		if err == nil {
			res.DiscoveredAddr = ri.Addr
			res.RogueSteered = ri.Addr != string(r1.Addr())
		}
	})

	// Signing off: an unsigned relay and speaker on the same channel
	// must keep working — per-subscriber identity is opt-in per relay.
	r3, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1})
	if err != nil {
		return res
	}
	legacy, err := sys.AddSpeaker(speaker.Config{
		Name: "legacy", Group: r3.Addr(), Channel: 1,
	})
	if err != nil {
		return res
	}

	p := audio.Voice
	sys.Clock.Go("player", func() {
		// Let the chain and the victim's lease establish, and land
		// sub3's genuine signed subscribe on r1.
		sub3.Send(r1.Addr(), capturedSub)
		sys.Clock.Sleep(time.Second)

		// The attacker holds identity 2 — a perfectly valid credential —
		// and uses it to sign control actions claiming the victim's
		// source. The tags verify (any credential holder can claim any
		// source on a fresh packet); the lease pin must refuse them.
		forger := security.NewIdentitySignerAt(ring.Credential(2), 2, string(victimAddr), 1000)
		cancelPkt, _ := (&proto.Subscribe{Channel: 1, Seq: 7, LeaseMs: 0}).Marshal()
		r2.Inject(lan.Packet{From: victimAddr, To: r2.Addr(), Data: forger.Sign(cancelPkt)})
		pausePkt, _ := (&proto.Pause{Channel: 1, Seq: 5, Paused: true}).Marshal()
		r2.Inject(lan.Packet{From: victimAddr, To: r2.Addr(), Data: forger.Sign(pausePkt)})
		res.ForgedDrops = r2.Stats().IdentityMismatch

		// Capture-and-replay of sub3's genuine subscribe: from a spoofed
		// source the source binding fails it outright (auth drop, no
		// lease, nothing reflected at the bystander); from its true
		// source the tag verifies but the session replay window drops it.
		before := r1.Stats().AuthDropped
		r1.Inject(lan.Packet{From: "10.0.66.99:5004", To: r1.Addr(), Data: capturedSub})
		res.SpoofedDropped = r1.Stats().AuthDropped > before
		r1.Inject(lan.Packet{From: sub3Addr, To: r1.Addr(), Data: capturedSub})
		res.ReplayDrops = r1.Stats().ReplayDropped

		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		legit.Stop()
		r2.Stop()
		sys.Shutdown()
		sub3.Close()
		bystander.Close()
		rogueConn.Close()
	})
	sys.Sim.WaitIdle()

	st := sp.Stats()
	res.SpeakerData = st.DataPackets
	res.SpeakerAcks = st.RelaySubAcks
	res.ChainAcks = r2.Stats().UpstreamAcks
	res.LegacyData = legacy.Stats().DataPackets
	return res
}
