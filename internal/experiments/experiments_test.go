package experiments

import (
	"io"
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the paper's qualitative shapes — who wins,
// where the crossovers are — with reduced workloads so the suite stays
// fast. cmd/eslab runs the full-size versions.

func TestFig4Shape(t *testing.T) {
	res := Fig4(io.Discard, 3, 2, 4)
	if len(res.Series[2].Points) != 3 || len(res.Series[4].Points) != 3 {
		t.Fatalf("series lengths wrong: %+v", res)
	}
	// Doubling the stream count should roughly double CPU (allow a wide
	// band for machine noise: 1.3x..3.5x).
	ratio := res.MeanCPU[4] / res.MeanCPU[2]
	if ratio < 1.3 || ratio > 3.5 {
		t.Fatalf("CPU ratio 4/2 streams = %.2f, want ~2", ratio)
	}
	if res.MeanCPU[2] <= 0 {
		t.Fatal("zero CPU measured")
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5(io.Discard, 10)
	un := res.Mean[Fig5Unloaded]
	kt := res.Mean[Fig5KernelThreaded]
	ul := res.Mean[Fig5UserLevel]
	if !(un < kt && kt < ul) {
		t.Fatalf("ordering wrong: unloaded %.1f, kernel %.1f, user %.1f", un, kt, ul)
	}
	// Unloaded is a tiny baseline; streaming is at least 3x above it.
	if kt < un*3 {
		t.Fatalf("kernel-threaded %.1f not clearly above unloaded %.1f", kt, un)
	}
	// The user-level penalty is real but bounded (paper: 37.2/28.7≈1.3).
	if ul/kt < 1.02 || ul/kt > 3 {
		t.Fatalf("user/kernel ratio %.2f outside (1.02,3)", ul/kt)
	}
}

func TestFig5Deterministic(t *testing.T) {
	a := fig5Run(Fig5UserLevel, 5)
	b := fig5Run(Fig5UserLevel, 5)
	if a.Mean() != b.Mean() {
		t.Fatalf("fig5 run not reproducible: %v vs %v", a.Mean(), b.Mean())
	}
}

func TestE3Shape(t *testing.T) {
	res := E3Bitrate(io.Discard, 2)
	byLabel := map[string]E3Row{}
	for _, r := range res.Rows {
		key := strings.Fields(r.Label)[0]
		if strings.Contains(r.Label, "q=10") {
			key = "q10"
		}
		if strings.Contains(r.Label, "q=0") {
			key = "q0"
		}
		byLabel[key] = r
	}
	raw := byLabel["raw"]
	// The paper's headline: raw CD is ~1.3-1.4 Mbps payload, a bit more
	// on the wire.
	if raw.WireMbps < 1.3 || raw.WireMbps > 1.8 {
		t.Fatalf("raw CD wire rate = %.2f Mbps, want ~1.5", raw.WireMbps)
	}
	if byLabel["ulaw"].PayloadKbps >= raw.PayloadKbps {
		t.Fatal("ulaw did not halve the payload")
	}
	if byLabel["q10"].PayloadKbps >= raw.PayloadKbps {
		t.Fatal("ovl q10 did not compress")
	}
	if byLabel["q0"].PayloadKbps >= byLabel["q10"].PayloadKbps {
		t.Fatal("quality ladder inverted on the wire")
	}
	// A 10 Mbps segment fits a handful of raw streams, not dozens.
	if res.MaxRawStreams < 4 || res.MaxRawStreams > 8 {
		t.Fatalf("max raw streams = %d, want 4..8 on 10 Mbps", res.MaxRawStreams)
	}
}

func TestE4Shape(t *testing.T) {
	res := E4RateLimiter(io.Discard, 20*time.Second)
	// With the limiter, sending paces to ~the clip length and everything
	// plays.
	if res.On.SendElapsed < 15*time.Second {
		t.Fatalf("limiter on: clip sent in %v, want ~20s", res.On.SendElapsed)
	}
	if res.On.PlayedFrac < 0.95 {
		t.Fatalf("limiter on: played %.0f%%, want ~100%%", res.On.PlayedFrac*100)
	}
	// Without it, the send is near-instant and most audio is lost —
	// "you will only hear the first few seconds of the song".
	if res.Off.SendElapsed > 5*time.Second {
		t.Fatalf("limiter off: send took %v, want near-instant", res.Off.SendElapsed)
	}
	if res.Off.PlayedFrac > 0.5 {
		t.Fatalf("limiter off: played %.0f%%, expected most audio lost", res.Off.PlayedFrac*100)
	}
	if res.Off.DroppedLate+res.Off.QueueDrops == 0 {
		t.Fatal("limiter off: no drops recorded anywhere")
	}
}

func TestE5Shape(t *testing.T) {
	res := E5Sync(io.Discard, []time.Duration{5 * time.Millisecond, 50 * time.Millisecond})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows[:2] {
		if r.Samples == 0 {
			t.Fatalf("%s: no skew samples", r.Label)
		}
		// Synced speakers stay within a generous audibility bound.
		if r.MaxSkewMs > 30 {
			t.Fatalf("%s: max skew %.1f ms", r.Label, r.MaxSkewMs)
		}
	}
	noSync := res.Rows[2]
	if !noSync.NoSync {
		t.Fatal("last row should be the ablation")
	}
	// Without timestamps, late joiners sit far off.
	if noSync.MaxSkewMs < 50 {
		t.Fatalf("no-sync max skew %.1f ms, expected large offset", noSync.MaxSkewMs)
	}
}

func TestE6Shape(t *testing.T) {
	res := E6BufferSize(io.Discard, []int{1400, 36000, 89600})
	get := func(cpu string, buf int) E6Row {
		for _, r := range res.Rows {
			if r.CPU == cpu && r.RecvBuffer == buf {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", cpu, buf)
		return E6Row{}
	}
	// Small buffers play cleanly even on the slow CPU.
	slowSmall := get("geode", 1400)
	if slowSmall.PlayedFrac < 0.9 {
		t.Fatalf("geode/small played %.0f%%", slowSmall.PlayedFrac*100)
	}
	// Buffers beyond the lead miss every deadline regardless of CPU.
	slowHuge := get("geode", 89600)
	if slowHuge.PlayedFrac > 0.3 {
		t.Fatalf("geode/huge played %.0f%%, expected skipped audio", slowHuge.PlayedFrac*100)
	}
	// At the boundary size, the slow CPU skips where the fast one is
	// fine — why the authors only saw this on the EON 4000 (§3.4).
	fastMid := get("fast", 36000)
	slowMid := get("geode", 36000)
	if fastMid.PlayedFrac < 0.85 {
		t.Fatalf("fast/mid played %.0f%%", fastMid.PlayedFrac*100)
	}
	slowBad := slowMid.Glitches + slowMid.DroppedLate
	fastBad := fastMid.Glitches + fastMid.DroppedLate
	if slowMid.PlayedFrac >= fastMid.PlayedFrac && slowBad <= fastBad {
		t.Fatalf("geode/mid (played %.0f%%, %d bad) not worse than fast/mid (%.0f%%, %d bad)",
			slowMid.PlayedFrac*100, slowBad, fastMid.PlayedFrac*100, fastBad)
	}
}

func TestE7Shape(t *testing.T) {
	res := E7JoinLatency(io.Discard, []time.Duration{200 * time.Millisecond, 2 * time.Second})
	short, long := res.Rows[0], res.Rows[1]
	if short.JoinCount == 0 || long.JoinCount == 0 {
		t.Fatalf("missing joins: %+v", res.Rows)
	}
	// Longer control intervals mean longer tune-in.
	if long.MeanJoin <= short.MeanJoin {
		t.Fatalf("join latency did not grow with interval: %v vs %v",
			short.MeanJoin, long.MeanJoin)
	}
	// Latency is bounded by roughly interval + lead + a block.
	if long.MaxJoin > 2*time.Second+time.Second {
		t.Fatalf("join latency %v exceeds interval+lead bound", long.MaxJoin)
	}
}

func TestE8Shape(t *testing.T) {
	res := E8Generations(io.Discard, 3)
	bySetting := map[int][]E8Row{}
	for _, r := range res.Rows {
		bySetting[r.Quality] = append(bySetting[r.Quality], r)
	}
	q10, q3 := bySetting[10], bySetting[3]
	if len(q10) != 3 || len(q3) != 3 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	// Max quality stays comfortably above the low setting at every
	// generation, and degradation is monotone-ish.
	for g := 0; g < 3; g++ {
		if q10[g].SNR <= q3[g].SNR {
			t.Fatalf("gen %d: q10 SNR %.1f <= q3 %.1f", g+1, q10[g].SNR, q3[g].SNR)
		}
	}
	if q10[2].SNR > q10[0].SNR+1 {
		t.Fatalf("q10 SNR improved across generations: %v", q10)
	}
	if q10[2].SNR < 15 {
		t.Fatalf("q10 3rd generation SNR %.1f dB too low", q10[2].SNR)
	}
}

func TestE9Shape(t *testing.T) {
	res := E9Auth(io.Discard, 300)
	byScheme := map[string]E9Row{}
	for _, r := range res.Rows {
		byScheme[r.Scheme] = r
		if r.SignNs <= 0 || r.VerifyNs <= 0 || r.GarbageNs <= 0 {
			t.Fatalf("%s: zero timings: %+v", r.Scheme, r)
		}
	}
	// Hash-based schemes keep junk rejection within ~100x of HMAC —
	// the paper's DoS-resistance requirement.
	if byScheme["hors"].GarbageNs > byScheme["hmac"].GarbageNs*100 {
		t.Fatalf("hors junk rejection %.0f ns vs hmac %.0f ns",
			byScheme["hors"].GarbageNs, byScheme["hmac"].GarbageNs)
	}
	// HORS pays in overhead, not verify time.
	if byScheme["hors"].OverheadBytes < 256 {
		t.Fatalf("hors overhead %d B suspiciously small", byScheme["hors"].OverheadBytes)
	}
	if res.InjectionDropped == 0 {
		t.Fatal("injection attack: nothing was rejected")
	}
	if !res.InjectionPlayedClean {
		t.Fatal("genuine stream did not survive the injection attack")
	}
}

func TestE10Shape(t *testing.T) {
	res := E10Loss(io.Discard, []float64{0, 0.05})
	clean, lossy := res.Rows[0], res.Rows[1]
	// End-of-stream wind-down inserts a couple of silence blocks even on
	// a perfect run; anything beyond that is a real glitch.
	if clean.Glitches > 4 {
		t.Fatalf("glitches with zero loss: %d", clean.Glitches)
	}
	if clean.PlayedFrac < 0.95 {
		t.Fatalf("clean run played %.0f%%", clean.PlayedFrac*100)
	}
	if lossy.LostPkts == 0 {
		t.Fatal("5% loss dropped nothing")
	}
	if lossy.Glitches <= clean.Glitches {
		t.Fatalf("loss produced no extra glitches: %d vs %d", lossy.Glitches, clean.Glitches)
	}
}

func TestE11Shape(t *testing.T) {
	res := E11Relay(io.Discard, []int{1, 4})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.FanoutSent == 0 {
			t.Fatalf("%d subscribers: relay forwarded nothing: %+v", r.Subscribers, r)
		}
		if r.MaxSkewMs == 0 {
			t.Fatalf("%d subscribers: no skew samples: %+v", r.Subscribers, r)
		}
		if r.MaxSkewMs > 15 {
			t.Fatalf("%d subscribers: relayed speaker outside epsilon band: %+v", r.Subscribers, r)
		}
		if r.Expired != 0 {
			t.Fatalf("%d subscribers: live subscribers expired: %+v", r.Subscribers, r)
		}
	}
	// Fan-out grows with the subscriber count.
	if res.Rows[1].FanoutSent <= res.Rows[0].FanoutSent {
		t.Fatalf("fanout did not scale: %+v", res.Rows)
	}
}

func TestE12Shape(t *testing.T) {
	res := E12BatchOrder(io.Discard, []int{4, 32})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The contract under test: batching never reorders a
		// subscriber's stream.
		if r.Reordered != 0 {
			t.Fatalf("%d subscribers: %d sequence inversions", r.Subscribers, r.Reordered)
		}
		// On a clean segment with roomy queues everything arrives.
		if want := int64(r.Subscribers * r.Packets); r.Received != want {
			t.Fatalf("%d subscribers: received %d of %d (gaps %d)",
				r.Subscribers, r.Received, want, r.Gaps)
		}
		if r.Batches == 0 {
			t.Fatalf("%d subscribers: no batches recorded", r.Subscribers)
		}
	}
	// With bursty input and many subscribers, flushes must actually
	// coalesce — otherwise this experiment isn't testing batching.
	if res.Rows[1].AvgBatch < 2 {
		t.Fatalf("avg batch %.2f at %d subscribers: batching never engaged",
			res.Rows[1].AvgBatch, res.Rows[1].Subscribers)
	}
}

func TestE15Shape(t *testing.T) {
	res := E15OpsPlane(io.Discard, 2)
	// The storm really happened, and the ops endpoints were scraped
	// from real HTTP clients while it did.
	if res.SpeakerData == 0 {
		t.Fatalf("no data crossed the observed 2-hop chain: %+v", res)
	}
	if res.StormScrapes == 0 {
		t.Fatalf("ops endpoints never scraped mid-storm: %+v", res)
	}
	// The live-coverage guarantee: every relay.Stats counter and all
	// four hot-path histograms appear in both relays' scrapes.
	if len(res.MissingMetrics) > 0 {
		t.Fatalf("live scrape missing %v", res.MissingMetrics)
	}
	if res.HistogramsLive != len(e15Histograms) {
		t.Fatalf("only %d/%d histograms in the live scrape: %+v",
			res.HistogramsLive, len(e15Histograms), res)
	}
	// Drop attribution from the outside: the injected forged Subscribe
	// ticks exactly the control/auth counter and shows up in /trace.
	if res.ForgedAuthDrops != 1 {
		t.Fatalf("forged Subscribe counted %d control/auth drops, want 1: %+v",
			res.ForgedAuthDrops, res)
	}
	if !res.TraceShowsAuth {
		t.Fatalf("drained /trace has no control-path auth drop: %+v", res)
	}
}

func TestE16Shape(t *testing.T) {
	// Full acceptance size on purpose (not the reduced-workload idiom of
	// the other shapes): the claim under test is that ≥2,000 simultaneous
	// Subscribes converge, and CI runs this under -race.
	res := E16JoinStorm(io.Discard, 2000)
	if res.Leased != res.Subscribers {
		t.Fatalf("only %d/%d subscribers leased: %+v", res.Leased, res.Subscribers, res)
	}
	if res.Converge <= 0 || res.Converge >= res.Window {
		t.Fatalf("storm did not converge inside the %v lease window: %+v", res.Window, res)
	}
	// The capped relay shed the overflow instead of absorbing it: it sits
	// at or under its threshold, and the spill really was steered via
	// redirects (not absorbed by retries against the same relay).
	if res.ShedFinal > res.Threshold {
		t.Fatalf("shedding relay at %d subscribers, cap %d: %+v", res.ShedFinal, res.Threshold, res)
	}
	if res.Redirected < int64(res.Subscribers-res.Threshold) {
		t.Fatalf("only %d redirects for a %d-subscriber overflow: %+v",
			res.Redirected, res.Subscribers-res.Threshold, res)
	}
	if res.RedirectLoops != 0 {
		t.Fatalf("%d subscribers exhausted their redirect budget: %+v", res.RedirectLoops, res)
	}
	if !res.ForgedIgnored {
		t.Fatalf("a forged redirect was accepted (or mishandled): %+v", res)
	}
}

func TestE14Shape(t *testing.T) {
	res := E14AuthRelay(io.Discard, 2)
	// The signed chain still delivers: grants verified at both the
	// speaker and the chained relay, stream playing at the far end.
	if res.SpeakerData == 0 {
		t.Fatalf("no data crossed the signed 2-hop chain: %+v", res)
	}
	if res.SpeakerAcks == 0 || res.ChainAcks == 0 {
		t.Fatalf("signed grants not accepted: %+v", res)
	}
	// The anti-amplification property: forged subscribes draw nothing —
	// no SubAck, no fan-out, nothing at the spoofed victim — and are
	// counted.
	if res.AttackerAcks != 0 || res.AttackerData != 0 {
		t.Fatalf("attacker drew %d acks / %d data packets, want 0/0: %+v",
			res.AttackerAcks, res.AttackerData, res)
	}
	if res.SpoofedData != 0 {
		t.Fatalf("spoofed victim received %d packets, want 0: %+v", res.SpoofedData, res)
	}
	if res.AuthDropped == 0 || !res.SpoofedDropped {
		t.Fatalf("forged subscribes not counted in auth.dropped: %+v", res)
	}
}

func TestE13Shape(t *testing.T) {
	res := E13Chain(io.Discard, 3)
	if res.Hops != 3 {
		t.Fatalf("hops = %d", res.Hops)
	}
	if res.DataAtLastHop == 0 {
		t.Fatalf("no data crossed the 3-hop chain: %+v", res)
	}
	if res.LeakPackets != 0 {
		t.Fatalf("channel-1 subscriber leaked %d channel-2 packets: %+v", res.LeakPackets, res)
	}
	if !res.Discovered {
		t.Fatalf("catalog discovery failed: %+v", res)
	}
	if res.LoopRefusals == 0 || res.LoopRefused == 0 {
		t.Fatalf("relay cycle not refused: %+v", res)
	}
}

func TestE17Shape(t *testing.T) {
	res := E17Ladder(io.Discard, 50)
	// Per-tier encoding, not per-subscriber: two ulaw listeners cost the
	// relay exactly one encode per calm-phase packet, and the tier really
	// halved the bytes each of them received.
	if res.CalmEncodes != int64(res.CalmPackets) {
		t.Fatalf("calm phase cost %d encodes for %d packets (2 ulaw subscribers must share one): %+v",
			res.CalmEncodes, res.CalmPackets, res)
	}
	if res.ThriftyRatio < 0.4 || res.ThriftyRatio > 0.6 {
		t.Fatalf("ulaw/source byte ratio = %.2f, want ~0.5: %+v", res.ThriftyRatio, res)
	}
	// The ladder: overload pushes every subscriber below its requested
	// tier, and the quiet dwell walks each back to exactly what it asked
	// for — no further.
	if !res.Downgraded {
		t.Fatalf("no subscriber downgraded across %d overload rounds: %+v", res.BurstRounds, res)
	}
	if !res.Recovered {
		t.Fatalf("subscribers never recovered their requested tiers: %+v", res)
	}
	if res.LadderDown < int64(res.Subscribers) || res.LadderUp < int64(res.Subscribers) {
		t.Fatalf("ladder transitions down/up = %d/%d, want >= %d each: %+v",
			res.LadderDown, res.LadderUp, res.Subscribers, res)
	}
	// Tier changes switch epochs; they must never reorder a stream.
	if res.Reorders != 0 {
		t.Fatalf("%d within-epoch sequence regressions: %+v", res.Reorders, res)
	}
}

func TestE18Shape(t *testing.T) {
	res := E18DVR(io.Discard, 5)
	// The relay had the full ask recorded: granted in full, not clamped,
	// and the joiner's replay starts at the head of the stream.
	if res.GrantedShift < res.Behind {
		t.Fatalf("granted shift = %v for a %v ask: %+v", res.GrantedShift, res.Behind, res)
	}
	if res.Clamped != 0 {
		t.Fatalf("clamped %d shift grants: %+v", res.Clamped, res)
	}
	if res.ShiftFirstSeq != 1 {
		t.Fatalf("late joiner started at seq %d, want 1 (head of the recording): %+v",
			res.ShiftFirstSeq, res)
	}
	if res.BacklogServed < int64(res.Behind/time.Second)*100 {
		t.Fatalf("backlog served = %d packets for %v of history: %+v",
			res.BacklogServed, res.Behind, res)
	}
	// Faster than realtime: convergence lands well before a second
	// whole backlog's worth of time passes.
	if !res.Converged || res.ConvergeIn >= res.Behind {
		t.Fatalf("converged=%v in %v (backlog %v): %+v",
			res.Converged, res.ConvergeIn, res.Behind, res)
	}
	// Mid catch-up the two listeners share the channel clock at
	// different positions; after convergence they share the tail.
	if !res.SyncOK {
		t.Fatalf("mid-catch-up positions live=%d shift=%d catching=%v: %+v",
			res.MidLiveSeq, res.MidShiftSeq, res.MidCatchingUp, res)
	}
	if !res.TailAgree {
		t.Fatalf("listeners did not end on the same final packet: %+v", res)
	}
	if res.LiveReorders != 0 || res.ShiftReorders != 0 {
		t.Fatalf("reorders live/shift = %d/%d: %+v", res.LiveReorders, res.ShiftReorders, res)
	}
	if res.FanoutDropped != 0 || res.Evictions != 0 {
		t.Fatalf("drops/evictions = %d/%d: %+v", res.FanoutDropped, res.Evictions, res)
	}
}

func TestE19Shape(t *testing.T) {
	res := E19Adversary(io.Discard, 2)
	// The legitimate chain played through every attack: the victim held
	// its lease and kept receiving, and the chained relay kept its
	// upstream grants flowing.
	if res.SpeakerData == 0 || res.SpeakerAcks == 0 || res.ChainAcks == 0 {
		t.Fatalf("signed chain did not play (data=%d acks=%d chain=%d): %+v",
			res.SpeakerData, res.SpeakerAcks, res.ChainAcks, res)
	}
	// Both cross-subscriber forgeries (the cancel and the pause signed
	// by a valid credential claiming the victim's source) were pinned
	// out by the lease's identity.
	if res.ForgedDrops < 2 {
		t.Fatalf("forged cancel/pause drops = %d, want >= 2: %+v", res.ForgedDrops, res)
	}
	// The captured subscribe gained nothing: auth-dropped from a spoofed
	// source (and nothing reflected at the bystander), replay-dropped
	// from its true source.
	if !res.SpoofedDropped || res.SpoofedData != 0 {
		t.Fatalf("spoofed-source replay: dropped=%v bystander-data=%d: %+v",
			res.SpoofedDropped, res.SpoofedData, res)
	}
	if res.ReplayDrops == 0 {
		t.Fatalf("same-source replay was not dropped: %+v", res)
	}
	// Forged and unsigned announces never steered verified discovery.
	if res.RogueSteered || res.DiscoveredAddr == "" {
		t.Fatalf("discovery steered to %q (rogue=%v): %+v",
			res.DiscoveredAddr, res.RogueSteered, res)
	}
	// With signing off, legacy unsigned peers interoperate unchanged.
	if res.LegacyData == 0 {
		t.Fatalf("legacy unsigned pair did not play: %+v", res)
	}
}
