package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E5Row is one synchronization configuration's outcome.
type E5Row struct {
	Label       string
	Epsilon     time.Duration
	NoSync      bool
	MaxSkewMs   float64 // worst pairwise inter-speaker skew
	MeanSkewMs  float64 // mean absolute pairwise skew
	DroppedLate int64   // discards across all speakers
	Samples     int
}

// E5Result is the outcome of the synchronization experiment.
type E5Result struct{ Rows []E5Row }

// E5Sync reproduces §3.2: three speakers — one present from the start,
// two joining mid-stream — must play within an inaudible skew of each
// other when timestamp synchronization is on, across a sweep of epsilon
// values; with synchronization off (the early-version behaviour the
// paper describes), the late joiners sit a buffer's depth away.
func E5Sync(w io.Writer, epsilons []time.Duration) E5Result {
	if len(epsilons) == 0 {
		epsilons = []time.Duration{
			time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		}
	}
	section(w, "E5 (§3.2)", "inter-speaker skew: epsilon sweep + no-sync ablation")
	var res E5Result
	for _, eps := range epsilons {
		row := e5Run(eps, false)
		row.Label = fmt.Sprintf("sync ε=%v", eps)
		res.Rows = append(res.Rows, row)
	}
	ab := e5Run(speaker.DefaultEpsilon, true)
	ab.Label = "no sync (ablation)"
	res.Rows = append(res.Rows, ab)

	tab := stats.Table{Headers: []string{"config", "max |skew|", "mean |skew|", "late drops", "samples"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Label, fmt.Sprintf("%.2f ms", r.MaxSkewMs),
			fmt.Sprintf("%.2f ms", r.MeanSkewMs), r.DroppedLate, r.Samples)
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: timestamped playback keeps skew inaudible; ESs started\n")
	fmt.Fprintf(w, "  mid-stream were the worst case before timestamps were added\n")
	return res
}

func e5Run(eps time.Duration, noSync bool) E5Row {
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "e5", Group: groupA, Codec: "raw",
		ControlInterval: 500 * time.Millisecond,
		Lead:            500 * time.Millisecond,
		Preroll:         400 * time.Millisecond,
	}, vad.Config{})
	if err != nil {
		return E5Row{}
	}
	meter := core.NewSkewMeter()
	speakers := []string{"a", "b", "c"}
	var sps []*speaker.Speaker
	add := func(name string) {
		sp, err := sys.AddSpeaker(speaker.Config{
			Name: name, Group: groupA, Epsilon: eps, NoSync: noSync,
			BlockSize: mono16.BytesFor(10 * time.Millisecond),
		})
		if err != nil {
			return
		}
		sps = append(sps, sp)
		meter.Attach(name, sp)
	}
	add("a")
	start := sys.Clock.Now()
	const clip = 8 * time.Second
	sys.Clock.Go("player", func() {
		ch.Play(mono16, &core.PositionSource{Channels: 1}, clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
	})
	sys.Clock.Go("join-b", func() {
		sys.Clock.Sleep(2 * time.Second)
		add("b")
	})
	sys.Clock.Go("join-c", func() {
		sys.Clock.Sleep(3500 * time.Millisecond)
		add("c")
	})
	sys.Sim.WaitIdle()

	times := core.SampleTimes(start.Add(5*time.Second), start.Add(8*time.Second), 40)
	row := E5Row{Epsilon: eps, NoSync: noSync}
	for i := 0; i < len(speakers); i++ {
		for j := i + 1; j < len(speakers); j++ {
			for _, ms := range meter.Skew(speakers[i], speakers[j], times) {
				if ms < 0 {
					ms = -ms
				}
				if ms > row.MaxSkewMs {
					row.MaxSkewMs = ms
				}
				row.MeanSkewMs += ms
				row.Samples++
			}
		}
	}
	if row.Samples > 0 {
		row.MeanSkewMs /= float64(row.Samples)
	}
	for _, sp := range sps {
		row.DroppedLate += sp.Stats().DroppedLate
	}
	return row
}
