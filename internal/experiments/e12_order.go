package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// E12Row is one batched fan-out configuration's ordering audit.
type E12Row struct {
	Subscribers int
	Packets     int     // sequenced data packets pushed upstream
	Received    int64   // data packets that reached subscribers
	Reordered   int64   // per-subscriber sequence inversions (must be 0)
	Gaps        int64   // sequence holes across all subscribers
	Batches     int64   // WriteBatch flushes the relay issued
	AvgBatch    float64 // datagrams per flush actually achieved
}

// E12Result is the outcome of the batching-order experiment.
type E12Result struct{ Rows []E12Row }

// E12BatchOrder validates the batched fan-out path's ordering contract:
// however aggressively the relay coalesces datagrams into WriteBatch
// flushes, a subscriber's stream must never be reordered — each shard
// worker drains per-subscriber queues FIFO and a batch preserves slice
// order, so sequence numbers arrive strictly increasing at every
// subscriber. The producer sends bursts (packets queued back-to-back)
// precisely to force multi-packet batches.
func E12BatchOrder(w io.Writer, counts []int) E12Result {
	if len(counts) == 0 {
		counts = []int{8, 64, 256}
	}
	section(w, "E12 (batch order)", "batched relay fan-out preserves per-subscriber order")
	var res E12Result
	for _, n := range counts {
		res.Rows = append(res.Rows, e12Run(n, 200))
	}
	tab := stats.Table{Headers: []string{"subscribers", "packets", "received", "reordered", "gaps", "batches", "avg batch"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Subscribers, r.Packets, r.Received, r.Reordered, r.Gaps,
			r.Batches, fmt.Sprintf("%.1f", r.AvgBatch))
	}
	tab.Render(w)
	fmt.Fprintf(w, "  reordered must be 0: batching may delay a packet, never overtake one\n")
	return res
}

func e12Run(n, packets int) E12Row {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	rconn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		return E12Row{Subscribers: n}
	}
	r, err := relay.New(sim, rconn, relay.Config{
		Group: groupA, Channel: 1,
		Network:        seg, // per-shard send sockets
		MaxSubscribers: n,
		QueueLen:       2 * packets, // ordering audit, not a drop test
	})
	if err != nil {
		return E12Row{Subscribers: n}
	}
	sim.Go("relay", r.Run)

	seqs := make([][]uint64, n) // each drain task owns its slice
	conns := make([]lan.Conn, n)
	for i := 0; i < n; i++ {
		conn, err := seg.Attach(lan.Addr(fmt.Sprintf("10.0.%d.%d:5004", 1+i/250, 1+i%250)))
		if err != nil {
			return E12Row{Subscribers: n}
		}
		conns[i] = conn
		i := i
		sim.Go("sub", func() {
			for {
				pkt, err := conn.Recv(0)
				if err != nil {
					return
				}
				if d, err := proto.UnmarshalData(pkt.Data); err == nil {
					seqs[i] = append(seqs[i], d.Seq)
				}
			}
		})
	}

	producer, err := seg.Attach("10.0.0.2:5000")
	if err != nil {
		return E12Row{Subscribers: n}
	}
	sim.Go("producer", func() {
		sub, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 600000}).Marshal()
		for _, c := range conns {
			c.Send(r.Addr(), sub)
		}
		for r.NumSubscribers() < n {
			sim.Sleep(5 * time.Millisecond)
		}
		// Bursts of 20 back-to-back packets: subscriber queues hold
		// several packets at once, so flushes carry real batches.
		payload := make([]byte, 256)
		for s := 1; s <= packets; s++ {
			data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: uint64(s), Payload: payload}).Marshal()
			producer.Send(groupA, data)
			if s%20 == 0 {
				sim.Sleep(10 * time.Millisecond)
			}
		}
		sim.Sleep(100 * time.Millisecond)
		r.Stop()
		for _, c := range conns {
			c.Close()
		}
		producer.Close()
	})
	sim.WaitIdle()

	row := E12Row{Subscribers: n, Packets: packets}
	for _, ss := range seqs {
		row.Received += int64(len(ss))
		var prev uint64
		for _, s := range ss {
			if s <= prev && prev != 0 {
				row.Reordered++
			} else if prev != 0 && s != prev+1 {
				row.Gaps += int64(s - prev - 1)
			}
			prev = s
		}
	}
	st := r.Stats()
	row.Batches = st.Batches
	if st.Batches > 0 {
		row.AvgBatch = float64(st.FanoutSent) / float64(st.Batches)
	}
	return row
}
