package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E14Result is the outcome of the authenticated-control-plane
// experiment.
type E14Result struct {
	SpeakerData    int64 // data packets at the speaker behind the signed 2-hop chain
	SpeakerAcks    int64 // verified grants the speaker accepted
	ChainAcks      int64 // verified grants the chained relay accepted from its upstream
	AuthDropped    int64 // forged subscribes dropped across the chain (es.relay.auth.dropped)
	AttackerAcks   int64 // SubAck replies the attacker drew (must be 0: silent drop)
	AttackerData   int64 // data packets fanned out to the attacker (must be 0)
	SpoofedData    int64 // data packets fanned out to the spoofed victim address (must be 0)
	SpoofedDropped bool  // the spoofed subscribe ticked the auth.dropped counter
}

// E14AuthRelay closes the ROADMAP's amplifier warning end to end: with
// §5.1 HMAC on the relay control plane, a fully signed 2-hop chain
// (group -> r1 -> r2 -> speaker) still delivers the stream, while a
// forged Subscribe — sent unsigned by an attacker, and injected again
// with a spoofed source address — creates no forwarding state, draws no
// SubAck (the silent drop is the anti-amplification property: zero
// bytes reflected at a spoofed victim), and is counted in
// es.relay.auth.dropped.
func E14AuthRelay(w io.Writer, secs int) E14Result {
	if secs <= 0 {
		secs = 4
	}
	section(w, "E14 (§5.1)", "authenticated relay control plane: signed chain, forged-subscribe drop")
	res := e14Run(time.Duration(secs) * time.Second)
	tab := stats.Table{Headers: []string{"data@speaker", "speaker acks", "chain acks",
		"auth dropped", "attacker acks", "attacker data", "spoofed data"}}
	tab.AddRow(res.SpeakerData, res.SpeakerAcks, res.ChainAcks,
		res.AuthDropped, res.AttackerAcks, res.AttackerData, res.SpoofedData)
	tab.Render(w)
	fmt.Fprintf(w, "  attacker acks/data and spoofed data must be 0 (silent drop: nothing to\n")
	fmt.Fprintf(w, "  reflect or amplify), auth dropped nonzero, and the signed chain still plays\n")
	return res
}

func e14Run(clip time.Duration) E14Result {
	var res E14Result
	auth := security.NewHMAC([]byte("relay control-plane key"))
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "secured", Group: groupA, Codec: "raw"}, vad.Config{})
	if err != nil {
		return res
	}
	r1, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1, Auth: auth})
	if err != nil {
		return res
	}
	r2, err := sys.AddRelay(relay.Config{Upstream: r1.Addr(), Channel: 1, Auth: auth})
	if err != nil {
		return res
	}
	sp, err := sys.AddSpeaker(speaker.Config{
		Name: "authed", Group: r2.Addr(), Channel: 1, RelayAuth: auth,
	})
	if err != nil {
		return res
	}

	// The attacker: no key, so its subscribes go out unsigned (and one
	// junk-signed variant), aimed at the first hop. Everything it ever
	// receives back — acks or fanned-out data — is amplification.
	attacker, err := sys.Net.Attach("10.0.66.6:5004")
	if err != nil {
		return res
	}
	sys.Clock.Go("attacker", func() {
		forged, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		junkKey := security.NewHMAC([]byte("wrong key"))
		for i := 0; i < 20; i++ {
			attacker.Send(r1.Addr(), forged)
			attacker.Send(r1.Addr(), junkKey.Sign(forged))
			sys.Clock.Sleep(100 * time.Millisecond)
		}
	})
	sys.Clock.Go("attacker-count", func() {
		for {
			pkt, err := attacker.Recv(0)
			if err != nil {
				return
			}
			if t, _, err := proto.PeekType(pkt.Data); err == nil && t == proto.TypeSubAck {
				res.AttackerAcks++
			} else {
				res.AttackerData++
			}
		}
	})

	// The spoofed victim: a bystander that never sends anything. The
	// forged subscribe naming it as source is injected at the relay
	// directly (UDP source spoofing, which the simulated segment's Send
	// path cannot fake), and the victim must receive zero packets.
	victim, err := sys.Net.Attach("10.0.66.99:5004")
	if err != nil {
		return res
	}
	var victimPkts int64
	sys.Clock.Go("victim-count", func() {
		for {
			if _, err := victim.Recv(0); err != nil {
				return
			}
			victimPkts++
		}
	})

	p := audio.Voice
	sys.Clock.Go("player", func() {
		spoofed, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		// The attacker goroutine is also ticking r1's AuthDropped, so
		// the spoofed-subscribe check must be a delta around the Inject
		// (which processes the packet synchronously), not a final
		// nonzero test that the unsigned floods would satisfy anyway.
		before := r1.Stats().AuthDropped
		r1.Inject(lan.Packet{From: "10.0.66.99:5004", To: r1.Addr(), Data: spoofed})
		res.SpoofedDropped = r1.Stats().AuthDropped > before
		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
		attacker.Close()
		victim.Close()
	})
	sys.Sim.WaitIdle()

	st := sp.Stats()
	res.SpeakerData = st.DataPackets
	res.SpeakerAcks = st.RelaySubAcks
	s1, s2 := r1.Stats(), r2.Stats()
	res.ChainAcks = s2.UpstreamAcks
	res.AuthDropped = s1.AuthDropped + s2.AuthDropped
	res.SpoofedData = victimPkts
	return res
}
