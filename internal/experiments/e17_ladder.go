package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay"
	"repro/internal/relay/lease"
	"repro/internal/stats"
)

// E17Result is the outcome of the adaptive quality-ladder experiment.
type E17Result struct {
	Subscribers  int           // one source-tier plus two ulaw-tier listeners
	CalmPackets  int           // data packets the producer sent in the calm phase
	CalmEncodes  int64         // transcode encodes that phase cost the relay
	ThriftyRatio float64       // ulaw-tier bytes / source-tier bytes in the calm phase
	BurstRounds  int           // overload rounds until every subscriber had downgraded
	Downgraded   bool          // every subscriber pushed below its requested tier
	Recovered    bool          // and back at its requested tier after the quiet dwell
	RecoverIn    time.Duration // overload end -> all subscribers recovered (sim time)
	LadderDown   int64         // relay es.relay.ladder.down across the run
	LadderUp     int64         // relay es.relay.ladder.up across the run
	Reorders     int64         // per-subscriber, per-epoch sequence regressions (must be 0)
}

// E17Ladder drives the adaptive quality ladder end to end: a relay with
// -ladder on serves one source-profile subscriber and two subscribers
// that requested the ulaw tier. In the calm phase the relay encodes the
// stream once per active tier — the two ulaw subscribers share every
// encoded payload, so encodes track packets, not listeners. Then the
// producer floods the relay until the per-subscriber queues drop and
// the ladder pushes every subscriber below its requested tier; when the
// overload stops, a clean dwell walks them back up to exactly what they
// asked for. Throughout, no subscriber's stream may ever be reordered
// within an epoch — tier changes switch epochs, they never shuffle
// packets.
func E17Ladder(w io.Writer, rounds int) E17Result {
	if rounds <= 0 {
		rounds = 50
	}
	section(w, "E17", "quality ladder: congestion-driven tier downgrade and recovery")
	res := e17Run(rounds)
	tab := stats.Table{Headers: []string{"subscribers", "calm packets", "calm encodes",
		"thrifty ratio", "burst rounds", "downgraded", "recovered in", "down/up", "reorders"}}
	rec := "never"
	if res.Recovered {
		rec = res.RecoverIn.Round(time.Millisecond).String()
	}
	tab.AddRow(res.Subscribers, res.CalmPackets, res.CalmEncodes,
		fmt.Sprintf("%.2f", res.ThriftyRatio), res.BurstRounds, res.Downgraded,
		rec, fmt.Sprintf("%d/%d", res.LadderDown, res.LadderUp), res.Reorders)
	tab.Render(w)
	fmt.Fprintf(w, "  calm encodes must equal calm packets (one encode per active tier, not per\n")
	fmt.Fprintf(w, "  subscriber), every subscriber must downgrade under overload and recover to\n")
	fmt.Fprintf(w, "  its requested tier, and no stream may be reordered within an epoch\n")
	return res
}

// e17Sub is one unicast listener: a leased subscription plus a receive
// loop that records, per epoch, byte counts and sequence regressions.
type e17Sub struct {
	conn lan.Conn
	sub  *lease.Subscriber

	mu       sync.Mutex
	lastSeq  map[uint32]uint64 // per-epoch high-water sequence
	bytes    int64             // data payload bytes received
	reorders int64
}

func (s *e17Sub) recv(stop *int32) {
	for {
		pkt, err := s.conn.Recv(time.Second)
		if err == lan.ErrTimeout {
			if atomic.LoadInt32(stop) != 0 {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		t, _, err := proto.PeekType(pkt.Data)
		if err != nil {
			continue
		}
		switch t {
		case proto.TypeSubAck:
			s.sub.HandleAckData(pkt.From, pkt.Data)
		case proto.TypeData:
			d, err := proto.UnmarshalData(pkt.Data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			if last, seen := s.lastSeq[d.Epoch]; seen && d.Seq <= last {
				s.reorders++
			} else {
				s.lastSeq[d.Epoch] = d.Seq
			}
			s.bytes += int64(len(d.Payload))
			s.mu.Unlock()
		}
	}
}

func (s *e17Sub) snapshot() (bytes, reorders int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, s.reorders
}

func e17Run(maxRounds int) E17Result {
	res := E17Result{Subscribers: 3}
	// Deep NIC buffers: an overload round lands hundreds of datagrams on
	// the relay's socket in one instant, and the congestion under test
	// must form in the relay's per-subscriber queues, not at the
	// simulated socket buffer in front of them.
	sys := core.NewSim(lan.SegmentConfig{Latency: 200 * time.Microsecond, QueueLen: 4096})
	r, err := sys.AddRelay(relay.Config{
		Group:           groupA,
		Channel:         1,
		QueueLen:        8,
		Ladder:          true,
		SweepInterval:   100 * time.Millisecond,
		LadderDwell:     time.Second,
		LadderDownDrops: 4,
	})
	if err != nil {
		return res
	}

	// One listener on the source tier, two on ulaw: the pair is what
	// makes per-tier (vs per-subscriber) encoding observable.
	profiles := []codec.Profile{codec.ProfileSource, codec.ProfileULaw, codec.ProfileULaw}
	subs := make([]*e17Sub, len(profiles))
	var stop int32
	for i, p := range profiles {
		conn, err := sys.Net.Attach(lan.Addr(fmt.Sprintf("10.8.0.%d:7000", i+1)))
		if err != nil {
			return res
		}
		s := &e17Sub{conn: conn, lastSeq: make(map[uint32]uint64)}
		s.sub = lease.New(sys.Clock, conn, fmt.Sprintf("ladder-%d", i))
		s.sub.SetProfile(p)
		subs[i] = s
		sys.Clock.Go(fmt.Sprintf("ladder-%d-recv", i), func() { s.recv(&stop) })
	}

	prod, err := sys.Net.Attach("10.8.1.1:5000")
	if err != nil {
		return res
	}
	var seq uint64
	const payload = 880 // 10 ms of 16-bit mono at 44.1 kHz
	sendControl := func() {
		data, _ := (&proto.Control{Channel: 1, Epoch: 1, Seq: seq,
			Params: mono16, Codec: "raw"}).Marshal()
		prod.Send(groupA, data)
	}
	sendData := func() {
		seq++
		data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: seq,
			PlayAt: int64(seq) * 10_000_000, Payload: make([]byte, payload)}).Marshal()
		prod.Send(groupA, data)
	}
	// burst hands the whole round to the segment in one batched write:
	// same-delay deliveries share one timer event, so every datagram
	// lands on the relay's socket queue in the same instant — the
	// arrival pattern that actually backs up the per-subscriber queues.
	burst := func(n int) {
		dgs := make([]lan.Datagram, n)
		for i := range dgs {
			seq++
			data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: seq,
				PlayAt: int64(seq) * 10_000_000, Payload: make([]byte, payload)}).Marshal()
			dgs[i] = lan.Datagram{To: groupA, Data: data}
		}
		lan.WriteBatch(prod, dgs)
	}
	atTier := func(want func(info relay.SubscriberInfo) bool) bool {
		infos := r.Subscribers()
		if len(infos) != len(subs) {
			return false
		}
		for _, info := range infos {
			if !want(info) {
				return false
			}
		}
		return true
	}

	sys.Clock.Go("ladder-driver", func() {
		defer func() {
			atomic.StoreInt32(&stop, 1)
			for _, s := range subs {
				s.sub.Close()
				s.conn.Close()
			}
			prod.Close()
			sys.Shutdown()
		}()
		for _, s := range subs {
			s.sub.Subscribe(r.Addr(), 1, time.Minute)
		}
		for i := 0; i < 50 && r.NumSubscribers() < len(subs); i++ {
			sys.Clock.Sleep(20 * time.Millisecond)
		}
		if r.NumSubscribers() < len(subs) {
			return
		}

		// Calm phase: a gently paced stream. The relay holds one ulaw
		// transcoder for the pair of thrifty subscribers.
		sendControl()
		sys.Clock.Sleep(50 * time.Millisecond)
		base := r.Stats().TranscodeEncodes
		for i := 0; i < 50; i++ {
			sendData()
			sys.Clock.Sleep(20 * time.Millisecond)
		}
		sys.Clock.Sleep(100 * time.Millisecond) // drain in-flight queues
		res.CalmPackets = 50
		res.CalmEncodes = r.Stats().TranscodeEncodes - base
		srcBytes, _ := subs[0].snapshot()
		ulBytes, _ := subs[1].snapshot()
		if srcBytes > 0 {
			res.ThriftyRatio = float64(ulBytes) / float64(srcBytes)
		}

		// Overload: zero-spaced bursts against 8-deep subscriber queues
		// until the ladder has pushed every subscriber below request.
		for res.BurstRounds = 0; res.BurstRounds < maxRounds; res.BurstRounds++ {
			if atTier(func(i relay.SubscriberInfo) bool { return i.Profile > i.ReqProfile }) {
				res.Downgraded = true
				break
			}
			burst(600)
			sys.Clock.Sleep(150 * time.Millisecond)
		}
		if !res.Downgraded {
			return
		}

		// Recovery: back to the gentle cadence. Clean dwells walk each
		// subscriber up to — and no further than — its requested tier.
		recoverStart := sys.Clock.Now()
		for i := 0; i < 200; i++ {
			if i%25 == 0 {
				sendControl()
			}
			sendData()
			sys.Clock.Sleep(50 * time.Millisecond)
			if atTier(func(i relay.SubscriberInfo) bool { return i.Profile == i.ReqProfile }) {
				res.Recovered = true
				res.RecoverIn = sys.Clock.Now().Sub(recoverStart)
				break
			}
		}

		st := r.Stats()
		res.LadderDown, res.LadderUp = st.LadderDown, st.LadderUp
		for _, s := range subs {
			_, re := s.snapshot()
			res.Reorders += re
		}
	})
	sys.Sim.WaitIdle()
	return res
}
