package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// e15Histograms are the four hot-path latency histograms every relay
// must export live.
var e15Histograms = []string{
	"es_relay_flush_latency_seconds",
	"es_relay_queue_residency_seconds",
	"es_relay_upstream_rtt_seconds",
	"es_relay_lease_margin_seconds",
}

// E15Result is the outcome of the ops-plane experiment.
type E15Result struct {
	SpeakerData     int64    // data packets at the speaker behind the chain: the storm really streamed
	StormScrapes    int64    // successful /metrics scrapes against both relays while it did
	MissingMetrics  []string // relay.Stats counters absent from a live scrape (must be empty)
	HistogramsLive  int      // of the four hot-path histograms, how many both relays exported
	ForgedAuthDrops int64    // control/auth drop-counter delta for one injected forged Subscribe
	TraceShowsAuth  bool     // the drained /trace ring attributes that drop to reason=auth
}

// E15OpsPlane exercises the ops plane end to end: a 2-hop authenticated
// relay chain streams a clip while both relays' ops endpoints are
// scraped from real HTTP clients mid-storm. The final scrape must carry
// a counter for every relay.Stats field and all four hot-path
// histograms — the live-coverage guarantee the reflection test asserts
// statically — and a forged Subscribe injected at the first hop must
// show up in the sampled packet trace with drop reason "auth", proving
// an operator can attribute the §5.1 silent drop from the outside.
func E15OpsPlane(w io.Writer, secs int) E15Result {
	if secs <= 0 {
		secs = 4
	}
	section(w, "E15", "ops plane: live scrape coverage mid-storm, forged-subscribe drop attribution")
	res := e15Run(time.Duration(secs) * time.Second)
	missing := "none"
	if len(res.MissingMetrics) > 0 {
		missing = strings.Join(res.MissingMetrics, ",")
	}
	tab := stats.Table{Headers: []string{"data@speaker", "storm scrapes", "missing metrics",
		"histograms live", "forged auth drops", "trace shows auth"}}
	tab.AddRow(res.SpeakerData, res.StormScrapes, missing,
		fmt.Sprintf("%d/%d", res.HistogramsLive, len(e15Histograms)),
		res.ForgedAuthDrops, res.TraceShowsAuth)
	tab.Render(w)
	fmt.Fprintf(w, "  every relay.Stats counter and all four histograms must appear in the live\n")
	fmt.Fprintf(w, "  scrape, and the forged Subscribe must trace as a control-path auth drop\n")
	return res
}

func e15Run(clip time.Duration) E15Result {
	var res E15Result
	auth := security.NewHMAC([]byte("relay control-plane key"))
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "observed", Group: groupA, Codec: "raw"}, vad.Config{})
	if err != nil {
		return res
	}
	// TraceSample 1 records every event: the one forged Subscribe must
	// land in the ring, not just in the (always exact) drop counters.
	r1, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1, Auth: auth, TraceSample: 1})
	if err != nil {
		return res
	}
	r2, err := sys.AddRelay(relay.Config{Upstream: r1.Addr(), Channel: 1, Auth: auth, TraceSample: 1})
	if err != nil {
		return res
	}
	sp, err := sys.AddSpeaker(speaker.Config{
		Name: "observed", Group: r2.Addr(), Channel: 1, RelayAuth: auth,
	})
	if err != nil {
		return res
	}

	// One ops endpoint per relay, exactly as relayd -ops-addr wires it.
	servers := make([]*obs.Server, 0, 2)
	for _, r := range []*relay.Relay{r1, r2} {
		reg := obs.NewRegistry()
		r.RegisterObs(reg)
		srv, err := obs.Serve("127.0.0.1:0", reg)
		if err != nil {
			return res
		}
		defer srv.Close()
		servers = append(servers, srv)
	}

	// Mid-storm scrapers: real HTTP clients on OS goroutines, hitting
	// /metrics only — /trace drains the event ring, which the final
	// attribution check needs intact.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, srv := range servers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				atomic.AddInt64(&res.StormScrapes, 1)
				time.Sleep(2 * time.Millisecond)
			}
		}(srv.Addr())
	}

	p := audio.Voice
	tracer := r1.Instruments().Tracer
	sys.Clock.Go("player", func() {
		// The forged Subscribe: unsigned, injected at the first hop.
		// Inject processes it synchronously, so the drop-counter delta
		// attributes exactly this packet.
		forged, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		before := tracer.DropCount(obs.PathControl, obs.ReasonAuth)
		r1.Inject(lan.Packet{From: "10.0.66.99:5004", To: r1.Addr(), Data: forged})
		res.ForgedAuthDrops = tracer.DropCount(obs.PathControl, obs.ReasonAuth) - before
		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	close(stop)
	wg.Wait()

	// Final scrapes: the coverage check runs against what an operator's
	// collector would actually have ingested. Stats()/histograms stay
	// readable after the relay stops, so this is deterministic.
	bodies := make([]string, 0, 2)
	for _, srv := range servers {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			return res
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		bodies = append(bodies, string(body))
	}
	st := reflect.TypeOf(relay.Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		name := obs.CounterName("es_relay", f)
		for _, body := range bodies {
			if !strings.Contains(body, name) {
				res.MissingMetrics = append(res.MissingMetrics, name)
				break
			}
		}
	}
	for _, h := range e15Histograms {
		live := true
		for _, body := range bodies {
			if !strings.Contains(body, h+"_count") {
				live = false
			}
		}
		if live {
			res.HistogramsLive++
		}
	}

	// Drain r1's trace ring the way an operator would (the /trace
	// route) and find the forged Subscribe among the sampled events.
	resp, err := http.Get("http://" + servers[0].Addr() + "/trace")
	if err != nil {
		return res
	}
	var traces map[string]obs.TraceSnapshot
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		return res
	}
	for _, ev := range traces["es_relay"].Events {
		if ev.Kind == "drop" && ev.Path == "control" && ev.Reason == "auth" {
			res.TraceShowsAuth = true
		}
	}

	res.SpeakerData = sp.Stats().DataPackets
	return res
}
