package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E11Row is one relay fan-out configuration's outcome.
type E11Row struct {
	Subscribers int
	MaxSkewMs   float64 // worst |skew| of any relayed speaker vs. direct
	FanoutSent  int64
	FanoutDrops int64
	Expired     int64
}

// E11Result is the outcome of the relay fan-out experiment.
type E11Result struct{ Rows []E11Row }

// E11Relay measures the unicast relay bridge: n speakers subscribe to a
// relay instead of joining the multicast group, and must hold the §3.2
// epsilon band against a directly joined speaker while the relay's
// fan-out counters stay clean. This is the paper's protocol leaving the
// single-segment LAN (§2.3) without giving up its producer
// statelessness: all subscriber state is leased soft state in the relay.
func E11Relay(w io.Writer, counts []int) E11Result {
	if len(counts) == 0 {
		counts = []int{1, 4, 8}
	}
	section(w, "E11 (relay)", "multicast-to-unicast relay fan-out and sync")
	var res E11Result
	for _, n := range counts {
		res.Rows = append(res.Rows, e11Run(n))
	}
	tab := stats.Table{Headers: []string{"subscribers", "max |skew|", "fanout sent", "fanout drops", "expired"}}
	for _, r := range res.Rows {
		tab.AddRow(r.Subscribers, fmt.Sprintf("%.2f ms", r.MaxSkewMs),
			r.FanoutSent, r.FanoutDrops, r.Expired)
	}
	tab.Render(w)
	fmt.Fprintf(w, "  relayed speakers must stay inside the same epsilon band as a direct join\n")
	return res
}

func e11Run(n int) E11Row {
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "e11", Group: groupA, Codec: "raw",
	}, vad.Config{})
	if err != nil {
		return E11Row{Subscribers: n}
	}
	r, err := sys.AddRelay(relay.Config{Group: groupA, Channel: 1})
	if err != nil {
		return E11Row{Subscribers: n}
	}
	meter := core.NewSkewMeter()
	direct, err := sys.AddSpeaker(speaker.Config{Name: "direct", Group: groupA})
	if err != nil {
		return E11Row{Subscribers: n}
	}
	_ = direct
	meter.Attach("direct", direct)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("relayed-%d", i)
		sp, err := sys.AddSpeaker(speaker.Config{Name: names[i], Group: r.Addr()})
		if err != nil {
			return E11Row{Subscribers: n}
		}
		meter.Attach(names[i], sp)
	}

	p := mono16
	const clip = 6 * time.Second
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &core.PositionSource{Channels: 1}, clip)
		sys.Clock.Sleep(clip)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	times := core.SampleTimes(start.Add(2*time.Second), start.Add(clip-time.Second), 30)
	var worst float64
	for _, name := range names {
		for _, ms := range meter.Skew("direct", name, times) {
			if ms < 0 {
				ms = -ms
			}
			if ms > worst {
				worst = ms
			}
		}
	}
	st := r.Stats()
	return E11Row{
		Subscribers: n,
		MaxSkewMs:   worst,
		FanoutSent:  st.FanoutSent,
		FanoutDrops: st.FanoutDropped,
		Expired:     st.Expired,
	}
}
