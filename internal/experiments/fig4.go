package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/stats"
)

// Fig4Result is the outcome of the Figure 4 reproduction.
type Fig4Result struct {
	// Series holds one CPU%-vs-time series per stream count.
	Series map[int]*stats.Series
	// MeanCPU is the mean CPU% per stream count.
	MeanCPU map[int]float64
}

// Fig4 reproduces Figure 4: userland CPU load against time as the local
// rebroadcaster compresses more CD-quality streams. The paper plots 60
// wall-clock seconds at four and eight streams; we time the real OVL
// encoder over `seconds` one-second ticks per configuration, on this
// machine's CPU.
func Fig4(w io.Writer, seconds int, streamCounts ...int) Fig4Result {
	if seconds <= 0 {
		seconds = 10
	}
	if len(streamCounts) == 0 {
		streamCounts = []int{4, 8}
	}
	section(w, "Figure 4", "compression CPU load vs. number of CD-quality streams")
	p := audio.CDQuality

	res := Fig4Result{Series: map[int]*stats.Series{}, MeanCPU: map[int]float64{}}
	for _, n := range streamCounts {
		// One independent encoder per stream, like the rebroadcaster
		// runs; one second of distinct audio per stream per tick.
		encs := make([]codec.Encoder, n)
		srcs := make([]audio.Source, n)
		for i := range encs {
			enc, err := codec.NewEncoder("ovl", p, codec.MaxQuality)
			if err != nil {
				fmt.Fprintf(w, "  error: %v\n", err)
				return res
			}
			encs[i] = enc
			srcs[i] = audio.NewMix(
				audio.NewTone(p.SampleRate, p.Channels, 220+float64(i)*55, 0.3),
				audio.NewNoise(uint64(i+1), 0.05),
			)
		}
		series := &stats.Series{Name: fmt.Sprintf("%d streams", n)}
		buf := make([]int16, p.SampleRate*p.Channels) // one second
		for tick := 0; tick < seconds; tick++ {
			start := time.Now()
			for i := range encs {
				srcs[i].ReadSamples(buf)
				raw := audio.Encode(p, buf)
				if _, err := encs[i].Encode(raw); err != nil {
					fmt.Fprintf(w, "  encode error: %v\n", err)
					return res
				}
			}
			cpu := float64(time.Since(start)) / float64(time.Second) * 100
			series.Add(time.Duration(tick)*time.Second, cpu)
		}
		res.Series[n] = series
		res.MeanCPU[n] = series.Mean()
	}

	var list []*stats.Series
	for _, n := range streamCounts {
		list = append(list, res.Series[n])
	}
	stats.RenderSeries(w, "  userland CPU% per 1s of audio (this machine):", list...)
	for _, n := range streamCounts {
		fmt.Fprintf(w, "  mean CPU%% at %d streams: %.1f\n", n, res.MeanCPU[n])
	}
	fmt.Fprintf(w, "  paper's shape: CPU grows ~linearly with stream count (4 vs 8 streams roughly doubles)\n")
	return res
}
