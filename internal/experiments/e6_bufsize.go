package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E6Row is one (buffer size, CPU) configuration's outcome.
type E6Row struct {
	RecvBuffer  int
	CPU         string
	Glitches    int64
	DroppedLate int64
	PlayedFrac  float64
}

// E6Result is the outcome of the buffer-size experiment.
type E6Result struct{ Rows []E6Row }

// E6BufferSize reproduces §3.4: on the slow Geode-class speaker, large
// receive buffers stall the pipeline — the speaker waits for the whole
// buffer, then pays a long decompression, and by then the audio deadline
// has passed, so audio skips. Small buffers keep every stage short. A
// fast CPU masks the problem, which is why the authors only found it on
// the real EON 4000 hardware.
func E6BufferSize(w io.Writer, bufs []int) E6Result {
	if len(bufs) == 0 {
		// The interesting region sits around the buffering lead (400 ms
		// ≈ 35 kB of µ-law CD audio): below it small buffers are safe,
		// at the boundary the CPU speed decides, above it every batch
		// misses its deadline.
		bufs = []int{1400, 8400, 22400, 36000, 89600}
	}
	section(w, "E6 (§3.4)", "speaker receive-buffer size vs. skipped audio")
	var res E6Result
	for _, cpu := range []struct {
		label string
		model speaker.CPUModel
	}{
		{"fast", speaker.CPUFast},
		{"geode", speaker.CPUGeode},
	} {
		for _, buf := range bufs {
			row := e6Run(buf, cpu.model)
			row.CPU = cpu.label
			res.Rows = append(res.Rows, row)
		}
	}
	tab := stats.Table{Headers: []string{"cpu", "recv buffer", "glitches", "late drops", "played"}}
	for _, r := range res.Rows {
		tab.AddRow(r.CPU, fmt.Sprintf("%d B", r.RecvBuffer), r.Glitches, r.DroppedLate,
			fmt.Sprintf("%.0f%%", r.PlayedFrac*100))
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: \"by reducing the buffer size, each of the stages finishes\n")
	fmt.Fprintf(w, "  faster and the audio stream is processed without problems\"\n")
	return res
}

func e6Run(recvBuffer int, cpu speaker.CPUModel) E6Row {
	ps, err := newPlayback(
		lan.SegmentConfig{},
		rebroadcast.Config{
			ID: 1, Name: "e6", Group: groupA, Codec: "ulaw",
			Lead: 400 * time.Millisecond, Preroll: 100 * time.Millisecond,
		},
		vad.Config{},
		[]speaker.Config{{
			Name: "es1", Group: groupA,
			RecvBuffer: recvBuffer,
			CPU:        cpu,
			Epsilon:    20 * time.Millisecond,
		}},
	)
	if err != nil {
		return E6Row{RecvBuffer: recvBuffer}
	}
	p := audio.CDQuality
	const clip = 10 * time.Second
	ps.Sys.Clock.Go("player", func() {
		ps.Ch.Play(p, audio.Music(p.SampleRate, p.Channels), clip)
		ps.Sys.Clock.Sleep(clip + 2*time.Second)
		ps.Sys.Shutdown()
	})
	ps.Sys.Sim.WaitIdle()

	sp := ps.Speakers[0]
	st := sp.Stats()
	return E6Row{
		RecvBuffer:  recvBuffer,
		Glitches:    glitches(sp),
		DroppedLate: st.DroppedLate,
		PlayedFrac:  float64(st.BytesPlayed) / float64(p.BytesFor(clip)),
	}
}
