package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E13Result is the outcome of the relay-chaining experiment.
type E13Result struct {
	Hops          int   // relay hops the delivered stream crossed
	DataAtLastHop int64 // channel-1 data packets at the end of the chain
	LeakPackets   int64 // channel-2 packets at a channel-1 subscriber (must be 0)
	Discovered    bool  // first hop found through the catalog
	LoopRefusals  int64 // SubLoop refusals issued by the deliberate cycle
	LoopRefused   int64 // upstream leases refused inside the cycle
}

// E13Chain validates relay chaining end to end: a 3-hop relay chain
// (group -> r1 -> r2 -> r3 -> subscriber) delivers the multicast
// stream across segments, the first hop is discovered through the §4.3
// catalog, a channel-1 subscriber on the channel-0 chain receives zero
// channel-2 packets, and a deliberately configured relay cycle is
// refused with SubLoop instead of forwarding forever.
func E13Chain(w io.Writer, hops int) E13Result {
	if hops <= 0 {
		hops = 3
	}
	section(w, "E13 (chain)", "multi-hop relay chaining, discovery, and loop refusal")
	res := e13Run(hops)
	tab := stats.Table{Headers: []string{"hops", "data@last-hop", "leaked", "discovered", "loop refusals", "loop refused"}}
	tab.AddRow(res.Hops, res.DataAtLastHop, res.LeakPackets,
		fmt.Sprint(res.Discovered), res.LoopRefusals, res.LoopRefused)
	tab.Render(w)
	fmt.Fprintf(w, "  leaked must be 0 (per-subscriber channel filter) and loop refusals nonzero (SubLoop)\n")
	return res
}

func e13Run(hops int) E13Result {
	res := E13Result{Hops: hops}
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	if err := sys.StartCatalog(200 * time.Millisecond); err != nil {
		return res
	}
	// One group carrying two channels: the chain relays everything
	// (channel 0), subscribers lease a single channel.
	ch1, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "wanted", Group: groupA, Codec: "raw"}, vad.Config{})
	if err != nil {
		return res
	}
	ch2, err := sys.AddChannel(rebroadcast.Config{ID: 2, Name: "other", Group: groupA, Codec: "raw"}, vad.Config{})
	if err != nil {
		return res
	}
	first, err := sys.AddRelay(relay.Config{Group: groupA})
	if err != nil {
		return res
	}
	last := first
	for i := 1; i < hops; i++ {
		r, err := sys.AddRelay(relay.Config{Upstream: last.Addr()})
		if err != nil {
			return res
		}
		last = r
	}

	// The deliberate cycle, off to the side of the working chain.
	la, err := sys.Net.Attach("10.0.99.1:5006")
	if err != nil {
		return res
	}
	lb, err := sys.Net.Attach("10.0.99.2:5006")
	if err != nil {
		return res
	}
	loopA, err := relay.New(sys.Clock, la, relay.Config{Upstream: "10.0.99.2:5006", UpstreamLease: 2 * time.Second})
	if err != nil {
		return res
	}
	loopB, err := relay.New(sys.Clock, lb, relay.Config{Upstream: "10.0.99.1:5006", UpstreamLease: 2 * time.Second})
	if err != nil {
		return res
	}
	sys.Clock.Go("loop-a", loopA.Run)
	sys.Clock.Go("loop-b", loopB.Run)

	// A channel-1 subscriber at the end of the chain, counting what it
	// is actually sent.
	sub, err := sys.Net.Attach("10.0.98.1:5004")
	if err != nil {
		return res
	}
	counts := make(map[uint32]int64)
	lastAddr := last.Addr()
	sys.Clock.Go("subscriber", func() {
		req, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		if err := sub.Send(lastAddr, req); err != nil {
			return
		}
		for {
			pkt, err := sub.Recv(0)
			if err != nil {
				return
			}
			if d, err := proto.UnmarshalData(pkt.Data); err == nil {
				counts[d.Channel]++
			}
		}
	})

	var discovered proto.RelayInfo
	var discoverErr error
	p := mono16
	sys.Clock.Go("player", func() {
		discovered, discoverErr = relay.Discover(sys.Clock, sys.Net, "10.0.98.2:5003",
			core.CatalogGroup, 1, 5*time.Second, nil, nil)
		sys.Clock.Go("audio-1", func() {
			ch1.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 4*time.Second)
		})
		sys.Clock.Go("audio-2", func() {
			ch2.Play(p, audio.NewTone(p.SampleRate, p.Channels, 880, 0.5), 4*time.Second)
		})
		sys.Clock.Sleep(8 * time.Second) // several loop refresh cycles
		loopA.Stop()
		loopB.Stop()
		sys.Shutdown()
		sub.Close()
	})
	sys.Sim.WaitIdle()

	res.DataAtLastHop = counts[1]
	res.LeakPackets = counts[2]
	res.Discovered = discoverErr == nil && discovered.Addr != ""
	sa, sb := loopA.Stats(), loopB.Stats()
	res.LoopRefusals = sa.Loops + sb.Loops
	res.LoopRefused = sa.UpstreamRefused + sb.UpstreamRefused
	return res
}
