package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E4Row is one rate-limiter configuration's outcome.
type E4Row struct {
	Label        string
	SendElapsed  time.Duration // simulated time to transmit the whole clip
	PlayedFrac   float64       // fraction of the clip the speaker played
	DroppedLate  int64
	QueueDrops   int64 // receiver socket overflow on the LAN
	GlitchBlocks int64
}

// E4RateLimiter reproduces §3.1: without rate limiting, the
// rebroadcaster blasts the stream at wire speed, speaker buffers
// overflow, and "you will only hear the first few seconds of the song";
// with the limiter, a clip takes exactly its play time to send and plays
// in full.
func E4RateLimiter(w io.Writer, clip time.Duration) E4Result {
	if clip <= 0 {
		clip = time.Minute
	}
	section(w, "E4 (§3.1)", fmt.Sprintf("rate limiter: does a %v song take %v?", clip, clip))
	res := E4Result{
		On:  e4Run(clip, false),
		Off: e4Run(clip, true),
	}
	res.On.Label = "limiter on"
	res.Off.Label = "limiter off"
	tab := stats.Table{Headers: []string{"config", "send time", "played", "late drops", "socket drops", "glitches"}}
	for _, r := range []E4Row{res.On, res.Off} {
		tab.AddRow(r.Label, fmtDur(r.SendElapsed), fmt.Sprintf("%.0f%%", r.PlayedFrac*100),
			r.DroppedLate, r.QueueDrops, r.GlitchBlocks)
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: the limiter sleeps for the play duration of each block (§3.1)\n")
	return res
}

// E4Result pairs the two configurations.
type E4Result struct {
	On, Off E4Row
}

func e4Run(clip time.Duration, disable bool) E4Row {
	ps, err := newPlayback(
		lan.SegmentConfig{},
		rebroadcast.Config{
			ID: 1, Name: "e4", Group: groupA, Codec: "raw",
			DisableRateLimit: disable,
		},
		vad.Config{QueueBlocks: 16},
		[]speaker.Config{{Name: "es1", Group: groupA}},
	)
	if err != nil {
		return E4Row{}
	}
	p := mono16
	start := ps.Sys.Clock.Now()
	var sendElapsed time.Duration
	ps.Sys.Clock.Go("player", func() {
		ps.Ch.Play(p, &core2PositionSource{}, clip)
		// Play returns once the pipeline accepted everything; with the
		// limiter that is ~the clip length, without it ~instant.
		sendElapsed = ps.Sys.Clock.Since(start)
		ps.Sys.Clock.Sleep(clip + 2*time.Second)
		ps.Sys.Shutdown()
	})
	ps.Sys.Sim.WaitIdle()

	sp := ps.Speakers[0]
	st := sp.Stats()
	total := int64(p.BytesFor(clip))
	row := E4Row{
		SendElapsed:  sendElapsed,
		PlayedFrac:   float64(st.BytesPlayed) / float64(total),
		DroppedLate:  st.DroppedLate,
		QueueDrops:   ps.Sys.Seg.Stats().DroppedQueue,
		GlitchBlocks: glitches(sp),
	}
	return row
}

// core2PositionSource is a local infinite ramp source (avoids importing
// the core position type here; any deterministic signal works for E4).
type core2PositionSource struct{ frame int64 }

// ReadSamples implements audio.Source.
func (p *core2PositionSource) ReadSamples(out []int16) (int, error) {
	for i := range out {
		out[i] = int16(p.frame % 20000)
		p.frame++
	}
	return len(out), nil
}
