package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay"
	"repro/internal/relay/lease"
	"repro/internal/stats"
)

// E18Result is the outcome of the time-shifted delivery experiment.
type E18Result struct {
	Behind        time.Duration // how far back the late joiner asked to start
	GrantedShift  time.Duration // shift the relay actually granted
	ShiftFirstSeq uint64        // first data seq the late joiner received
	BacklogServed int64         // es.relay.dvr.backlog.packets across the run
	Converged     bool          // the late joiner reached the live head
	ConvergeIn    time.Duration // join -> convergence (sim time)
	MidCatchingUp bool          // still replaying at the mid-run snapshot
	MidLiveSeq    uint64        // live listener's position at that snapshot
	MidShiftSeq   uint64        // late joiner's position at the same instant
	SyncOK        bool          // both positions on the channel clock, joiner behind
	TailAgree     bool          // after convergence both ended on the final packet
	LiveReorders  int64         // within-epoch sequence regressions (must be 0)
	ShiftReorders int64
	FanoutDropped int64 // relay queue drops (must be 0)
	Clamped       int64 // es.relay.dvr.clamped (must be 0: depth covers the ask)
	Evictions     int64 // es.relay.dvr.evictions (must be 0: joiner keeps up)
}

// E18DVR drives time-shifted delivery end to end: a DVR-enabled relay
// records a position-coded stream while one listener plays it live;
// `behind` seconds in, a second listener joins asking for the whole
// recorded history (Subscribe.ShiftMs). The relay starts it from the
// ring — its first packet is the first packet of the stream — and
// replays the backlog faster than realtime until the cursor converges
// on the live head, where normal fan-out takes over seamlessly. Mid
// catch-up the two listeners are at provably different stream
// positions on the same channel clock (every Data packet carries its
// vclock deadline); after convergence they ride the same packets to
// the same final position. Nothing may be reordered, dropped, clamped,
// or evicted along the way.
func E18DVR(w io.Writer, behindSecs int) E18Result {
	if behindSecs <= 0 {
		behindSecs = 10
	}
	section(w, "E18", "time-shifted delivery: DVR catch-up join, convergence on live")
	res := e18Run(behindSecs)
	tab := stats.Table{Headers: []string{"behind", "granted", "first seq", "backlog",
		"converged in", "mid live/shift", "sync", "tail", "reorders", "drop/clamp/evict"}}
	conv := "never"
	if res.Converged {
		conv = res.ConvergeIn.Round(time.Millisecond).String()
	}
	tab.AddRow(res.Behind, res.GrantedShift.Round(time.Millisecond), res.ShiftFirstSeq,
		res.BacklogServed, conv,
		fmt.Sprintf("%d/%d", res.MidLiveSeq, res.MidShiftSeq), res.SyncOK, res.TailAgree,
		fmt.Sprintf("%d/%d", res.LiveReorders, res.ShiftReorders),
		fmt.Sprintf("%d/%d/%d", res.FanoutDropped, res.Clamped, res.Evictions))
	tab.Render(w)
	fmt.Fprintf(w, "  the late joiner must start at the head of the recorded stream, replay it\n")
	fmt.Fprintf(w, "  faster than realtime while the live listener is further along the channel\n")
	fmt.Fprintf(w, "  clock, and converge onto the identical live tail — no reorders, no drops\n")
	return res
}

// e18Sub is one unicast listener: a leased subscription plus a receive
// loop tracking its position on the position-coded stream.
type e18Sub struct {
	conn lan.Conn
	sub  *lease.Subscriber

	mu        sync.Mutex
	lastSeq   map[uint32]uint64 // per-epoch high-water sequence
	firstSeq  uint64            // first data seq seen (0 = none yet)
	newest    uint64            // highest data seq seen
	reorders  int64             // within-epoch sequence regressions
	misplaced int64             // PlayAt disagreeing with the position code
}

func (s *e18Sub) recv(stop *int32) {
	for {
		pkt, err := s.conn.Recv(time.Second)
		if err == lan.ErrTimeout {
			if atomic.LoadInt32(stop) != 0 {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		t, _, err := proto.PeekType(pkt.Data)
		if err != nil {
			continue
		}
		switch t {
		case proto.TypeSubAck:
			s.sub.HandleAckData(pkt.From, pkt.Data)
		case proto.TypeData:
			d, err := proto.UnmarshalData(pkt.Data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			if last, seen := s.lastSeq[d.Epoch]; seen && d.Seq <= last {
				s.reorders++
			} else {
				s.lastSeq[d.Epoch] = d.Seq
			}
			if s.firstSeq == 0 {
				s.firstSeq = d.Seq
			}
			if d.Seq > s.newest {
				s.newest = d.Seq
			}
			// The stream is position-coded: every packet's vclock deadline
			// is its sequence number times the 10 ms cadence. Backlog and
			// live must agree on that mapping — that is what lets two
			// listeners at different positions share one channel clock.
			if d.PlayAt != int64(d.Seq)*10_000_000 {
				s.misplaced++
			}
			s.mu.Unlock()
		}
	}
}

func (s *e18Sub) position() (first, newest, reorders, misplaced int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.firstSeq), int64(s.newest), s.reorders, s.misplaced
}

func e18Run(behindSecs int) E18Result {
	res := E18Result{Behind: time.Duration(behindSecs) * time.Second}
	sys := core.NewSim(lan.SegmentConfig{Latency: 200 * time.Microsecond, QueueLen: 4096})
	r, err := sys.AddRelay(relay.Config{
		Group:    groupA,
		Channel:  1,
		DVR:      true,
		DVRDepth: 2 * res.Behind, // depth comfortably covers the ask: no clamp
	})
	if err != nil {
		return res
	}

	mkSub := func(i int) *e18Sub {
		conn, err := sys.Net.Attach(lan.Addr(fmt.Sprintf("10.9.0.%d:7000", i+1)))
		if err != nil {
			return nil
		}
		s := &e18Sub{conn: conn, lastSeq: make(map[uint32]uint64)}
		s.sub = lease.New(sys.Clock, conn, fmt.Sprintf("dvr-%d", i))
		return s
	}
	live, shifted := mkSub(0), mkSub(1)
	if live == nil || shifted == nil {
		return res
	}
	var stop int32
	sys.Clock.Go("dvr-live-recv", func() { live.recv(&stop) })
	sys.Clock.Go("dvr-shift-recv", func() { shifted.recv(&stop) })

	prod, err := sys.Net.Attach("10.9.1.1:5000")
	if err != nil {
		return res
	}
	var seq uint64
	tick := func() { // one 10 ms production beat; a Control every second
		if seq%100 == 0 {
			data, _ := (&proto.Control{Channel: 1, Epoch: 1, Seq: seq,
				Params: mono16, Codec: "raw"}).Marshal()
			prod.Send(groupA, data)
		}
		seq++
		data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: seq,
			PlayAt: int64(seq) * 10_000_000, Payload: make([]byte, 880)}).Marshal()
		prod.Send(groupA, data)
		sys.Clock.Sleep(10 * time.Millisecond)
	}
	shiftInfo := func() (relay.SubscriberInfo, bool) {
		for _, info := range r.Subscribers() {
			if info.Addr == shifted.conn.LocalAddr() {
				return info, true
			}
		}
		return relay.SubscriberInfo{}, false
	}

	sys.Clock.Go("dvr-driver", func() {
		defer func() {
			atomic.StoreInt32(&stop, 1)
			live.sub.Close()
			shifted.sub.Close()
			live.conn.Close()
			shifted.conn.Close()
			prod.Close()
			sys.Shutdown()
		}()
		// The live listener rides the stream from the first packet.
		live.sub.Subscribe(r.Addr(), 1, time.Minute)
		for i := 0; i < 50 && r.NumSubscribers() < 1; i++ {
			sys.Clock.Sleep(20 * time.Millisecond)
		}
		for i := 0; i < behindSecs*100; i++ {
			tick()
		}

		// behindSecs in, the second listener asks for the whole history.
		shifted.sub.SetShift(res.Behind)
		shifted.sub.Subscribe(r.Addr(), 1, time.Minute)
		joined := sys.Clock.Now()
		// Production continues while the backlog replays; the granted
		// shift arrives with the first ack.
		for i := 0; i < 100*behindSecs*2 && !res.Converged; i++ {
			tick()
			if res.GrantedShift == 0 {
				res.GrantedShift = shifted.sub.GrantedShift()
			}
			if i == 100 { // one second in: positions mid-catch-up
				info, ok := shiftInfo()
				res.MidCatchingUp = ok && info.CatchingUp
				_, ln, _, _ := live.position()
				_, sn, _, _ := shifted.position()
				res.MidLiveSeq, res.MidShiftSeq = uint64(ln), uint64(sn)
			}
			if i%10 == 9 {
				if info, ok := shiftInfo(); ok && !info.CatchingUp && res.GrantedShift > 0 {
					res.Converged = true
					res.ConvergeIn = sys.Clock.Now().Sub(joined)
				}
			}
		}
		// A shared tail: both listeners must ride the same live packets
		// to the same final position.
		for i := 0; i < 50; i++ {
			tick()
		}
		sys.Clock.Sleep(200 * time.Millisecond) // drain in-flight queues

		sf, sn, sre, smp := shifted.position()
		_, ln, lre, lmp := live.position()
		res.ShiftFirstSeq = uint64(sf)
		res.ShiftReorders, res.LiveReorders = sre, lre
		res.SyncOK = res.MidCatchingUp && res.MidShiftSeq < res.MidLiveSeq &&
			smp == 0 && lmp == 0
		res.TailAgree = uint64(sn) == seq && uint64(ln) == seq
		st := r.Stats()
		res.BacklogServed = st.DVRBacklog
		res.FanoutDropped = st.FanoutDropped
		res.Clamped = st.DVRClamped
		res.Evictions = st.DVREvictions
	})
	sys.Sim.WaitIdle()
	return res
}
