package vad

import (
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/audiodev"
	"repro/internal/vclock"
)

// Mode selects the streaming variant (§3.3).
type Mode int

// Streaming variants.
const (
	// ModeUserStreaming forwards blocks to the master device for a
	// user-level reader (the shipped design).
	ModeUserStreaming Mode = iota
	// ModeInKernelStreaming delivers blocks straight to KernelSend from
	// the kernel thread.
	ModeInKernelStreaming
	// ModeNaive has no interrupt engine: playback stalls after one block.
	ModeNaive
)

// Block is one event on the master side: either a chunk of audio data or
// a configuration update (§2.1.2 — the reason a named pipe cannot
// replace the audio device).
type Block struct {
	Seq    int64        // monotonically increasing event number
	Time   time.Time    // capture time
	Params audio.Params // configuration in effect
	Config bool         // true: configuration event (Data is nil)
	Data   []byte       // raw audio bytes in Params' encoding
}

// Config parameterizes a VAD instance.
type Config struct {
	Mode Mode
	// QueueBlocks bounds the master-side queue; a full queue exerts
	// backpressure on the slave (0 means the default of 64).
	QueueBlocks int
	// KernelSend receives blocks in ModeInKernelStreaming.
	KernelSend func(Block)
}

// DefaultQueueBlocks is the master queue depth when Config leaves it 0.
const DefaultQueueBlocks = 64

// VAD is a virtual audio device pair.
type VAD struct {
	clock  vclock.Clock
	slave  *audiodev.Device
	master *Master
	drv    *driver
}

// New creates a VAD on the given clock.
func New(clock vclock.Clock, cfg Config) *VAD {
	if cfg.QueueBlocks <= 0 {
		cfg.QueueBlocks = DefaultQueueBlocks
	}
	v := &VAD{clock: clock}
	v.master = newMaster(clock, cfg.QueueBlocks)
	v.drv = &driver{clock: clock, cfg: cfg, master: v.master}
	v.slave = audiodev.NewDevice(clock, v.drv)
	return v
}

// Slave returns the application-facing audio device (/dev/vads).
func (v *VAD) Slave() *audiodev.Device { return v.slave }

// Master returns the consumer-facing device (/dev/vadm).
func (v *VAD) Master() *Master { return v.master }

// Close tears the pair down. Unlike closing the slave (which an audio
// application does between songs and which leaves the pair usable,
// exactly like a pty), Close ends the master stream: blocked readers
// drain the queue and then see end-of-stream.
func (v *VAD) Close() {
	v.slave.Close()
	v.drv.mu.Lock()
	v.drv.gen++
	v.drv.mu.Unlock()
	v.master.close()
}

// driver is the low-level audio(9) driver with no hardware behind it.
type driver struct {
	clock  vclock.Clock
	cfg    Config
	master *Master

	mu     sync.Mutex
	seq    int64
	params audio.Params
	gen    int // invalidates kernel threads across reopen
}

// Name implements audiodev.HWDriver.
func (d *driver) Name() string { return "vad" }

// Open implements audiodev.HWDriver. Configuration set by the
// application's ioctls flows to the master side as a control event, so
// the consumer "can always decode the audio stream correctly" (§2.1.1).
func (d *driver) Open(p audio.Params, blockSize int) error {
	d.mu.Lock()
	d.params = p
	d.gen++
	d.seq++
	blk := Block{Seq: d.seq, Time: d.clock.Now(), Params: p, Config: true}
	mode, send := d.cfg.Mode, d.cfg.KernelSend
	d.mu.Unlock()
	if mode == ModeInKernelStreaming {
		if send != nil {
			send(blk)
		}
		return nil
	}
	d.master.push(blk)
	return nil
}

// Close implements audiodev.HWDriver. It stops the kernel thread but
// leaves the master side open: the application closing /dev/vads between
// songs must not tear down the pair (use VAD.Close for that).
func (d *driver) Close() {
	d.mu.Lock()
	d.gen++
	d.mu.Unlock()
}

// TriggerOutput implements audiodev.HWDriver.
func (d *driver) TriggerOutput(dev *audiodev.Device) error {
	d.mu.Lock()
	gen := d.gen
	params := d.params
	mode := d.cfg.Mode
	send := d.cfg.KernelSend
	d.mu.Unlock()

	if mode == ModeNaive {
		// The §3.3 failure mode: the high-level driver believes we set up
		// a DMA engine and never calls us again. Consume one block and
		// silently do nothing more; the ring fills and writers stall.
		buf := make([]byte, dev.BlockSize())
		n, st := dev.FetchBlock(buf)
		if st == audiodev.FetchData {
			d.forward(params, buf[:n], send)
		}
		return nil
	}

	// The kernel-thread workaround: a task that plays the role of the
	// missing hardware interrupt engine. Unlike real hardware it imposes
	// no rate limit (§3.1): it drains as fast as the application writes.
	d.clock.Go("vad-kthread", func() {
		buf := make([]byte, dev.BlockSize())
		for {
			d.mu.Lock()
			stale := gen != d.gen
			d.mu.Unlock()
			if stale {
				dev.OutputStopped()
				return
			}
			n, st := dev.FetchBlockWait(buf)
			if st == audiodev.FetchHalted {
				dev.OutputStopped()
				return
			}
			d.forward(params, buf[:n], send)
			dev.BlockDone()
		}
	})
	return nil
}

// forward delivers one data block according to the streaming mode.
func (d *driver) forward(params audio.Params, data []byte, send func(Block)) {
	d.mu.Lock()
	d.seq++
	blk := Block{
		Seq:    d.seq,
		Time:   d.clock.Now(),
		Params: params,
		Data:   append([]byte(nil), data...),
	}
	d.mu.Unlock()
	if d.cfg.Mode == ModeInKernelStreaming {
		if send != nil {
			send(blk)
		}
		return
	}
	d.master.push(blk)
}
