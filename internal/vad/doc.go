// Package vad implements the paper's Virtual Audio Device: a pseudo
// device-pair modeled on pty(4). The slave side presents the exact
// audio(4) interface (it is an audiodev.Device), so unmodified audio
// applications play into it; whatever they write — audio data and the
// ioctl-set configuration — appears on the master side for a user
// process such as the rebroadcaster to consume (§2.1).
//
// Because the OpenBSD audio architecture assumes a hardware interrupt
// engine behind every low-level driver, a pseudo device must fake one
// (§3.3). The package implements all three variants the paper discusses:
//
//   - ModeNaive: no engine at all. TriggerOutput consumes a single block
//     and is never invoked again; playback stalls. This reproduces the
//     bug that motivated the kernel thread.
//   - ModeUserStreaming: a kernel thread moves blocks from the slave's
//     ring to the master device, where a user-level application reads
//     them — the design the paper shipped.
//   - ModeInKernelStreaming: the kernel thread itself delivers blocks to
//     a send callback (streaming entirely inside the kernel), the
//     lower-context-switch variant of Figure 5 that was rejected for
//     inflexibility.
package vad
