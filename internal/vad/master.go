package vad

import (
	"sync"

	"repro/internal/vclock"
)

// Master is the control side of the device pair (/dev/vadm): a user
// process reads the audio and configuration events that the application
// wrote to the slave. Reads block until an event arrives; a bounded
// queue exerts backpressure on the slave when the reader falls behind.
type Master struct {
	clock vclock.Clock

	mu       sync.Mutex
	notEmpty vclock.Cond
	notFull  vclock.Cond
	queue    []Block
	max      int
	closed   bool
	attached bool // a reader has the master open
	dropped  int64
}

func newMaster(clock vclock.Clock, queueBlocks int) *Master {
	m := &Master{clock: clock, max: queueBlocks, attached: true}
	m.notEmpty = clock.NewCond()
	m.notFull = clock.NewCond()
	return m
}

// push enqueues an event from the slave side. While a reader is attached
// it blocks when the queue is full (backpressure); with no reader, data
// is discarded like sound into an unplugged amplifier.
func (m *Master) push(b Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return
		}
		if !m.attached {
			m.dropped++
			return
		}
		if len(m.queue) < m.max {
			m.queue = append(m.queue, b)
			m.notEmpty.Broadcast()
			return
		}
		m.notFull.Wait(&m.mu)
	}
}

// close marks the pair shut down and wakes all waiters.
func (m *Master) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.notEmpty.Broadcast()
	m.notFull.Broadcast()
}

// ReadBlock returns the next event, blocking until one is available. ok
// is false once the device is closed and the queue drained.
func (m *Master) ReadBlock() (Block, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(m.queue) > 0 {
			b := m.queue[0]
			m.queue = m.queue[1:]
			m.notFull.Broadcast()
			return b, true
		}
		if m.closed {
			return Block{}, false
		}
		m.notEmpty.Wait(&m.mu)
	}
}

// Detach marks the master as having no reader: subsequent slave output
// is discarded instead of exerting backpressure.
func (m *Master) Detach() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attached = false
	m.queue = nil
	m.notFull.Broadcast()
}

// Attach (re)connects a reader.
func (m *Master) Attach() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attached = true
}

// Dropped reports how many blocks were discarded while detached.
func (m *Master) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Pending returns the current queue depth.
func (m *Master) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
