package vad

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/vclock"
)

func TestVADConfigEventPrecedesData(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{})
	slave, master := v.Slave(), v.Master()

	sim.Go("app", func() {
		if err := slave.Open(audio.CDQuality); err != nil {
			t.Error(err)
		}
		slave.Write(make([]byte, slave.BlockSize()*2))
		slave.Drain()
		v.Close()
	})

	var blocks []Block
	sim.Go("reader", func() {
		for {
			b, ok := master.ReadBlock()
			if !ok {
				return
			}
			blocks = append(blocks, b)
		}
	})
	sim.WaitIdle()

	if len(blocks) < 3 {
		t.Fatalf("got %d events, want config + 2 data", len(blocks))
	}
	if !blocks[0].Config {
		t.Fatal("first event is not a config event")
	}
	if blocks[0].Params != audio.CDQuality {
		t.Fatalf("config params = %v", blocks[0].Params)
	}
	for _, b := range blocks[1:] {
		if b.Config {
			continue
		}
		if b.Params != audio.CDQuality {
			t.Fatalf("data block params = %v", b.Params)
		}
		if len(b.Data) == 0 {
			t.Fatal("empty data block")
		}
	}
}

func TestVADSetParamsEmitsConfigEvent(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{})
	slave, master := v.Slave(), v.Master()
	sim.Go("app", func() {
		slave.Open(audio.CDQuality)
		slave.SetParams(audio.Voice)
		slave.Write(make([]byte, slave.BlockSize()))
		slave.Drain()
		v.Close()
	})
	var configs []audio.Params
	sim.Go("reader", func() {
		for {
			b, ok := master.ReadBlock()
			if !ok {
				return
			}
			if b.Config {
				configs = append(configs, b.Params)
			}
		}
	})
	sim.WaitIdle()
	if len(configs) != 2 {
		t.Fatalf("got %d config events, want 2", len(configs))
	}
	if configs[0] != audio.CDQuality || configs[1] != audio.Voice {
		t.Fatalf("configs = %v", configs)
	}
}

func TestVADNoRateLimit(t *testing.T) {
	// §3.1: with no hardware behind it, the VAD consumes a five-minute
	// song at wire speed — virtually no simulated time passes.
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{QueueBlocks: 1 << 20})
	slave, master := v.Slave(), v.Master()
	p := audio.Voice
	song := make([]byte, p.BytesFor(5*time.Minute))
	start := sim.Now()
	var elapsed time.Duration
	var got int
	sim.Go("reader", func() {
		for {
			b, ok := master.ReadBlock()
			if !ok {
				return
			}
			got += len(b.Data)
		}
	})
	sim.Go("app", func() {
		slave.Open(p)
		slave.Write(song)
		slave.Drain()
		elapsed = sim.Since(start)
		v.Close()
	})
	sim.WaitIdle()
	if got != len(song) {
		t.Fatalf("master saw %d bytes, want %d", got, len(song))
	}
	// "Five minutes in five milliseconds": anything well under a second
	// proves there is no rate limiting.
	if elapsed > time.Second {
		t.Fatalf("VAD drain took %v of simulated time; rate limit leaked in", elapsed)
	}
}

func TestVADBackpressureOnSlowReader(t *testing.T) {
	// A slow master reader fills the bounded queue; the app's writes
	// then block until the reader catches up — data is never dropped.
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{QueueBlocks: 4})
	slave, master := v.Slave(), v.Master()
	p := audio.Voice
	var got int
	total := 0
	sim.Go("slow-reader", func() {
		for {
			b, ok := master.ReadBlock()
			if !ok {
				return
			}
			got += len(b.Data)
			sim.Sleep(10 * time.Millisecond)
		}
	})
	sim.Go("app", func() {
		slave.Open(p)
		data := make([]byte, slave.BlockSize()*40)
		total = len(data)
		slave.Write(data)
		slave.Drain()
		v.Close()
	})
	sim.WaitIdle()
	if got != total {
		t.Fatalf("reader got %d bytes, want %d", got, total)
	}
}

func TestVADDetachedMasterDropsData(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{QueueBlocks: 2})
	slave, master := v.Slave(), v.Master()
	master.Detach()
	sim.Go("app", func() {
		slave.Open(audio.Voice)
		slave.Write(make([]byte, slave.BlockSize()*10))
		slave.Drain()
		slave.Close()
	})
	sim.WaitIdle()
	if master.Dropped() == 0 {
		t.Fatal("detached master dropped nothing")
	}
}

func TestVADNaiveModeStalls(t *testing.T) {
	// §3.3: without the kernel thread, the high-level driver triggers
	// once, one block is consumed, and playback wedges with the ring
	// full.
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{Mode: ModeNaive, QueueBlocks: 64})
	slave := v.Slave()
	p := audio.Voice
	var wrote int
	writeDone := false
	sim.Go("app", func() {
		slave.Open(p)
		// Try to write far more than the ring holds; bound the attempt
		// with a watchdog so the test itself terminates.
		done := make(chan struct{})
		sim.Go("watchdog", func() {
			sim.Sleep(time.Minute)
			slave.Close() // unwedge the writer
			close(done)
		})
		n, _ := slave.Write(make([]byte, 1<<20))
		wrote = n
		writeDone = true
		<-done
	})
	sim.WaitIdle()
	if !writeDone {
		t.Fatal("writer never unwedged")
	}
	// The writer must have stalled: only ~ring capacity + one block got in.
	if wrote >= 1<<20 {
		t.Fatal("naive mode did not stall; whole write was accepted")
	}
	st := slave.GetStats()
	if st.BlocksPlayed > 1 {
		t.Fatalf("naive mode consumed %d blocks, want <= 1", st.BlocksPlayed)
	}
}

func TestVADInKernelStreaming(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	var got int
	var blocks int
	v := New(sim, Config{
		Mode: ModeInKernelStreaming,
		KernelSend: func(b Block) {
			got += len(b.Data)
			blocks++
		},
	})
	slave := v.Slave()
	p := audio.Voice
	total := 0
	sim.Go("app", func() {
		slave.Open(p)
		data := make([]byte, slave.BlockSize()*8)
		total = len(data)
		slave.Write(data)
		slave.Drain()
		slave.Close()
	})
	sim.WaitIdle()
	if got != total {
		t.Fatalf("kernel send saw %d bytes, want %d", got, total)
	}
	if blocks < 8 {
		t.Fatalf("kernel send saw %d blocks, want >= 8", blocks)
	}
	// In-kernel mode bypasses the master queue entirely.
	if v.Master().Pending() != 0 {
		t.Fatal("in-kernel mode leaked blocks to the master queue")
	}
}

func TestVADContextSwitchComparison(t *testing.T) {
	// Figure 5's shape: user-level streaming costs more context switches
	// than in-kernel streaming for the same workload.
	run := func(mode Mode) int64 {
		sim := vclock.NewSim(time.Time{})
		cfg := Config{Mode: mode}
		if mode == ModeInKernelStreaming {
			cfg.KernelSend = func(Block) {}
		}
		v := New(sim, cfg)
		slave, master := v.Slave(), v.Master()
		if mode == ModeUserStreaming {
			sim.Go("userapp", func() {
				for {
					if _, ok := master.ReadBlock(); !ok {
						return
					}
				}
			})
		}
		p := audio.Voice
		sim.Go("app", func() {
			slave.Open(p)
			// Paced writes, like a real player: one block per block time.
			blk := slave.BlockSize()
			for i := 0; i < 50; i++ {
				slave.Write(make([]byte, blk))
				sim.Sleep(p.Duration(blk))
			}
			v.Close()
		})
		sim.WaitIdle()
		return sim.Switches()
	}
	kernel := run(ModeInKernelStreaming)
	user := run(ModeUserStreaming)
	if user <= kernel {
		t.Fatalf("user streaming switches (%d) not above in-kernel (%d)", user, kernel)
	}
	// The paper measures roughly 37.2 vs 28.7 — about 1.3x. Accept a
	// generous band around that shape.
	ratio := float64(user) / float64(kernel)
	if ratio < 1.05 || ratio > 3 {
		t.Fatalf("switch ratio = %.2f, want within (1.05, 3)", ratio)
	}
}

func TestMasterReadAfterCloseDrainsQueue(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{QueueBlocks: 16})
	slave, master := v.Slave(), v.Master()
	sim.Go("app", func() {
		slave.Open(audio.Voice)
		slave.Write(make([]byte, slave.BlockSize()*3))
		slave.Drain()
		v.Close()
	})
	sim.WaitIdle()
	// All queued events must still be readable after close.
	n := 0
	for {
		_, ok := master.ReadBlock()
		if !ok {
			break
		}
		n++
	}
	if n < 4 { // config + 3 data
		t.Fatalf("drained %d events after close, want >= 4", n)
	}
}

func TestVADSequenceNumbersMonotone(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	v := New(sim, Config{})
	slave, master := v.Slave(), v.Master()
	sim.Go("app", func() {
		slave.Open(audio.Voice)
		slave.Write(make([]byte, slave.BlockSize()*5))
		slave.Drain()
		v.Close()
	})
	var seqs []int64
	sim.Go("reader", func() {
		for {
			b, ok := master.ReadBlock()
			if !ok {
				return
			}
			seqs = append(seqs, b.Seq)
		}
	})
	sim.WaitIdle()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence not monotone: %v", seqs)
		}
	}
}
